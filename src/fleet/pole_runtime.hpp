#pragma once

// One pole's fault domain: a frame_supervisor plus its pole_link, a
// bounded inbox, and a watchdog state machine — everything that can go
// wrong on one pole stays on that pole. The watchdog runs in tick
// virtual time (no wall clocks, no sleeps) and detects three failure
// shapes, reusing the PR1 taxonomy the supervisor already accounts:
//
//   repeatedly-failing  consecutive dropped frames past a threshold
//   corrupting          consecutive link checksum failures past a threshold
//   hung                no frame processed for max_silent_ticks
//
// Any of them quarantines the pole: its inbox is discarded, arrivals are
// rejected, and a restart is scheduled with capped exponential backoff
// plus deterministic jitter drawn from the pole's own rng (so identically
// seeded fleets back off identically, but co-faulting poles don't
// thundering-herd their restarts onto the same tick). A restart bumps the
// supervisor's health epoch (restart()), enters probation, and only a
// configured recovery streak of good frames promotes the pole back to
// live — a flapping pole re-quarantines with a longer backoff instead of
// oscillating.
//
// run_tick() touches exclusively this pole's state, so the fleet manager
// may run all poles' ticks in parallel with bit-identical results for
// any thread count (the thread_pool contract).

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "fleet/pole_link.hpp"
#include "obs/flight_recorder.hpp"
#include "runtime/supervisor.hpp"

namespace hawc::fleet {

enum class pole_state {
    live,         // processing normally
    probation,    // restarted, proving a recovery streak
    quarantined,  // parked until its backoff expires
};

const char* to_string(pole_state state);

struct watchdog_config {
    /// Consecutive dropped frames before quarantine.
    std::size_t max_consecutive_dropped = 8;
    /// Consecutive link checksum failures before quarantine.
    std::size_t max_checksum_failures = 4;
    /// Ticks without processing any frame before the pole counts as hung;
    /// 0 disables (a silent pole is then handled by the fleet ladder).
    std::uint64_t max_silent_ticks = 0;

    /// Backoff before restart attempt k: min(cap, base << k) ticks, plus
    /// jitter uniform in [0, jitter_fraction * backoff).
    std::uint64_t backoff_base_ticks = 4;
    std::uint64_t backoff_cap_ticks = 64;
    double backoff_jitter_fraction = 0.25;

    /// Good frames in probation required to return to live (and reset
    /// the backoff attempt counter) — the fleet-level hysteresis knob.
    std::size_t probation_recovery_streak = 3;
};

/// Per-pole accounting, cumulative over the pole's lifetime.
struct pole_stats {
    std::uint64_t processed = 0;            // frames through the supervisor
    std::uint64_t good_frames = 0;          // ok or degraded outcomes
    std::uint64_t checksum_failures = 0;    // corrupted messages rejected
    std::uint64_t duplicates_dropped = 0;   // replays of a seen frame_index
    std::uint64_t shed_inbox_overflow = 0;  // oldest frame evicted, inbox full
    std::uint64_t rejected_quarantined = 0;  // arrivals while quarantined
    std::uint64_t discarded_on_quarantine = 0;  // inbox flushed at quarantine
    std::uint64_t quarantines = 0;
    std::uint64_t restarts = 0;
};

/// One processed frame's outcome, recorded when history is enabled —
/// the unit of bit-exactness comparison against a solo replay baseline.
struct frame_outcome {
    std::uint64_t frame_index = 0;
    std::size_t count = 0;
    frame_status status = frame_status::ok;

    bool operator==(const frame_outcome&) const = default;
};

class pole_runtime {
public:
    /// `seed` doubles as the frame-stream base seed (must match the
    /// pole's corpus base_seed for replay parity) and, forked, as the
    /// backoff jitter stream. `primary`/`fallback` follow the
    /// frame_supervisor lifetime rules. `max_inbox` bounds buffered
    /// frames; overflow sheds the oldest.
    pole_runtime(std::string pole_id, std::uint64_t seed,
                 const supervisor_config& supervisor, const link_fault_config& link,
                 const watchdog_config& watchdog, const human_classifier& primary,
                 const human_classifier* fallback, std::size_t max_inbox);

    /// Post one frame onto this pole's link (faults apply in transit).
    void submit(link_message msg);

    /// One tick of this pole's fault domain: drain the link, run up to
    /// `budget` inbox frames through the supervisor, and advance the
    /// watchdog. Only this pole's state is touched — safe to run all
    /// poles' ticks concurrently.
    void run_tick(std::uint64_t tick, std::size_t budget);

    const std::string& id() const { return id_; }
    std::uint64_t stream_seed() const { return stream_seed_; }
    pole_state state() const { return state_; }
    std::size_t backoff_attempt() const { return attempt_; }
    std::uint64_t resume_tick() const { return resume_tick_; }

    bool has_good_count() const { return has_good_; }
    std::uint64_t last_good_count() const { return last_good_count_; }
    std::uint64_t last_good_tick() const { return last_good_tick_; }

    const pole_stats& stats() const { return stats_; }
    const link_stats& link() const { return link_.stats(); }
    std::size_t inbox_depth() const { return inbox_.size(); }

    frame_supervisor& supervisor() { return supervisor_; }
    const frame_supervisor& supervisor() const { return supervisor_; }

    /// Record every processed frame's (index, count, status) for parity
    /// assertions. Off by default (soaks process tens of thousands).
    void set_record_history(bool on) { record_history_ = on; }
    const std::vector<frame_outcome>& history() const { return history_; }

    /// Route this pole's lifecycle events (quarantine, restart, recovery,
    /// link corruption, ladder transitions) into `sink`, tagged with the
    /// pole id and current tick. Pass nullptr to detach. The supervisor's
    /// own stage/ladder events flow through the same tagger.
    void attach_events(telemetry::event_sink* sink);

    /// Arm the black-box flight recorder. `events`/`spans` are optional
    /// context snapshotted into postmortem bundles at dump time.
    void enable_flight_recorder(const obs::flight_recorder_config& config,
                                const obs::event_log* events = nullptr,
                                const telemetry::trace_sink* spans = nullptr);

    obs::flight_recorder* recorder() { return recorder_ ? &*recorder_ : nullptr; }
    const obs::flight_recorder* recorder() const {
        return recorder_ ? &*recorder_ : nullptr;
    }

private:
    void process_message(link_message msg, std::uint64_t tick);
    void quarantine(std::uint64_t tick);
    bool seen_recently(std::uint64_t frame_index);
    void emit(telemetry::event ev);

    std::string id_;
    std::uint64_t stream_seed_;
    watchdog_config watchdog_;
    std::size_t max_inbox_;

    frame_supervisor supervisor_;
    pole_link link_;
    rng backoff_rng_;

    std::deque<link_message> inbox_;
    // Ring of recently processed frame indices for duplicate suppression
    // (link duplicates and retransmits).
    std::array<std::uint64_t, 32> recent_{};
    std::size_t recent_next_ = 0;
    std::size_t recent_filled_ = 0;

    pole_state state_ = pole_state::live;
    std::size_t attempt_ = 0;        // backoff escalation counter
    std::uint64_t resume_tick_ = 0;  // when quarantine ends
    std::size_t dropped_streak_ = 0;
    std::size_t checksum_streak_ = 0;
    std::size_t probation_progress_ = 0;
    std::uint64_t last_progress_tick_ = 0;

    bool has_good_ = false;
    std::uint64_t last_good_count_ = 0;
    std::uint64_t last_good_tick_ = 0;

    pole_stats stats_;
    bool record_history_ = false;
    std::vector<frame_outcome> history_;

    // Observability: the tagger stamps pole id + tick on everything this
    // pole emits; the recorder is only touched from run_tick (same
    // single-thread-per-pole contract as the rest of the state).
    telemetry::tagging_event_sink events_;
    std::optional<obs::flight_recorder> recorder_;
};

}  // namespace hawc::fleet
