#include "fleet/fleet_manager.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace hawc::fleet {

namespace {

using telemetry::labeled_name;

}  // namespace

fleet_manager::fleet_manager(const fleet_config& config,
                             const std::vector<pole_setup>& poles)
    : config_{config},
      rungs_(poles.size(), pole_rung::excluded),
      board_{std::max<std::size_t>(1, poles.size())} {
    HAWC_REQUIRE(!poles.empty(), "a fleet needs at least one pole");
    poles_.reserve(poles.size());
    pole_metrics_.reserve(poles.size());
    for (const auto& setup : poles) {
        HAWC_REQUIRE(setup.primary != nullptr, "pole needs a primary classifier");
        poles_.push_back(std::make_unique<pole_runtime>(
            setup.pole_id, setup.seed, setup.supervisor, setup.link, setup.watchdog,
            *setup.primary, setup.fallback, config_.max_inbox));

        pole_metrics pm;
        const std::string& id = setup.pole_id;
        pm.frames = &metrics_.make_counter(
            labeled_name("hawc_pole_frames_total", "pole", id),
            "Frames processed by this pole's supervisor");
        pm.restarts = &metrics_.make_counter(
            labeled_name("hawc_pole_restarts_total", "pole", id),
            "Watchdog restarts of this pole");
        pm.quarantines = &metrics_.make_counter(
            labeled_name("hawc_pole_quarantines_total", "pole", id),
            "Times this pole was quarantined");
        pm.checksum_failures = &metrics_.make_counter(
            labeled_name("hawc_pole_checksum_failures_total", "pole", id),
            "Corrupted link messages rejected by this pole");
        pm.state = &metrics_.make_gauge(
            labeled_name("hawc_pole_state", "pole", id),
            "0 live, 1 probation, 2 quarantined");
        pm.rung = &metrics_.make_gauge(
            labeled_name("hawc_pole_rung", "pole", id),
            "Fleet ladder rung: 0 live, 1 stale_count, 2 excluded");
        pm.count = &metrics_.make_gauge(
            labeled_name("hawc_pole_count", "pole", id),
            "Latest good people count from this pole");
        pole_metrics_.push_back(pm);
    }

    aggregate_gauge_ = &metrics_.make_gauge("hawc_fleet_aggregate_count",
                                            "People count summed over included poles");
    included_gauge_ = &metrics_.make_gauge("hawc_fleet_included_poles",
                                           "Poles contributing to the aggregate");
    ticks_counter_ = &metrics_.make_counter("hawc_fleet_ticks_total", "Fleet ticks run");
    shed_ticks_counter_ = &metrics_.make_counter(
        "hawc_fleet_shed_ticks_total", "Ticks run with a halved budget (backpressure)");
    frames_shed_counter_ = &metrics_.make_counter(
        "hawc_fleet_frames_shed_total", "Frames evicted from pole inboxes on overflow");

    fleet_frames_counter_ = &metrics_.make_counter(
        "hawc_fleet_frames_total", "Frames processed across all poles");
    fleet_dropped_counter_ = &metrics_.make_counter(
        "hawc_fleet_frames_dropped_total",
        "Frames that ended dropped (unrecoverable) across all poles");
    fleet_quarantines_counter_ = &metrics_.make_counter(
        "hawc_fleet_quarantines_total", "Watchdog quarantines across all poles");
    excluded_gauge_ = &metrics_.make_gauge(
        "hawc_fleet_excluded_poles", "Poles excluded from the aggregate this tick");
    max_staleness_gauge_ = &metrics_.make_gauge(
        "hawc_fleet_max_staleness_ticks",
        "Oldest included count's age in ticks (the staleness-bound witness)");
}

void fleet_manager::attach_observability(obs::event_log& log) {
    event_log_ = &log;
    for (auto& pole : poles_) pole->attach_events(&log);
}

void fleet_manager::enable_flight_recorders(const obs::flight_recorder_config& config) {
    for (auto& pole : poles_) pole->enable_flight_recorder(config, event_log_, nullptr);
}

void fleet_manager::install_slo(std::vector<obs::slo_rule> rules, std::uint64_t period) {
    HAWC_REQUIRE(period > 0, "SLO evaluation period must be positive");
    slo_period_ = period;
    slo_.emplace(metrics_, metrics_, std::move(rules), event_log_);
}

std::vector<obs::postmortem_bundle> fleet_manager::collect_postmortems() {
    std::vector<obs::postmortem_bundle> out;
    for (auto& pole : poles_) {
        if (pole->recorder() == nullptr) continue;
        auto dumps = pole->recorder()->take_dumps();
        out.insert(out.end(), std::make_move_iterator(dumps.begin()),
                   std::make_move_iterator(dumps.end()));
    }
    return out;
}

obs::health_summary fleet_manager::fleet_health() const {
    if (slo_) return slo_->summary();
    return {};
}

void fleet_manager::submit(std::size_t pole, link_message msg) {
    HAWC_REQUIRE(pole < poles_.size(), "pole index out of range");
    poles_[pole]->submit(std::move(msg));
}

void fleet_manager::tick() {
    ++tick_;
    ticks_counter_->add(1);

    // Backpressure: sample once per tick, before the fan-out, so every
    // pole sees the same budget and the tick stays deterministic.
    const double utilization = probe_ ? probe_() : global_pool().utilization();
    std::size_t budget = config_.frames_per_tick;
    if (utilization >= config_.shed_at_utilization) {
        budget = std::max<std::size_t>(1, budget / 2);
        ++shed_ticks_;
        shed_ticks_counter_->add(1);
    }

    // Each pole's tick touches only that pole's state; chunk boundaries
    // don't matter for the result, so this is bit-identical for any
    // thread count (the thread_pool contract).
    const std::uint64_t now = tick_;
    global_pool().parallel_for(0, poles_.size(), 1,
                               [&](std::size_t lo, std::size_t hi, std::size_t) {
                                   for (std::size_t i = lo; i < hi; ++i) {
                                       poles_[i]->run_tick(now, budget);
                                   }
                               });

    publish_tick();

    // Observability rides the same virtual clock: bucket refills and SLO
    // evaluations are functions of the tick counter, never wall time.
    if (event_log_ != nullptr) event_log_->advance_tick(tick_);
    if (slo_ && tick_ % slo_period_ == 0) slo_->evaluate(tick_);
}

void fleet_manager::publish_tick() {
    occupancy_snapshot snap;
    snap.tick = tick_;
    snap.poles.resize(poles_.size());

    std::uint64_t frames_shed = 0;
    std::uint64_t frames_total = 0;
    std::uint64_t dropped_total = 0;
    std::uint64_t quarantines_total = 0;
    std::uint64_t max_staleness = 0;
    for (std::size_t i = 0; i < poles_.size(); ++i) {
        const pole_runtime& p = *poles_[i];

        // Ladder: freshness of the last good count decides the rung; the
        // pole's watchdog state only gates the live rung (a quarantined
        // pole can still serve stale within the bound).
        pole_rung rung = pole_rung::excluded;
        if (p.has_good_count()) {
            const std::uint64_t age = tick_ - p.last_good_tick();
            if (age <= config_.stale_after_ticks && p.state() == pole_state::live) {
                rung = pole_rung::live;
            } else if (age <= config_.exclude_after_ticks) {
                rung = pole_rung::stale_count;
            }
        }
        rungs_[i] = rung;

        pole_occupancy& slot = snap.poles[i];
        slot.rung = rung;
        slot.epoch = p.supervisor().health().epoch;
        if (rung != pole_rung::excluded) {
            slot.count = p.last_good_count();
            slot.updated_tick = p.last_good_tick();
            snap.aggregate += slot.count;
            ++snap.included;
            max_staleness = std::max(max_staleness, tick_ - p.last_good_tick());
        } else {
            slot.count = 0;
            slot.updated_tick = p.last_good_tick();
        }

        // Mirror per-pole accounting into the labeled metrics (deltas for
        // counters, absolutes for gauges).
        pole_metrics& pm = pole_metrics_[i];
        const pole_stats& st = p.stats();
        pm.frames->add(st.processed - pm.frames_seen);
        pm.frames_seen = st.processed;
        pm.restarts->add(st.restarts - pm.restarts_seen);
        pm.restarts_seen = st.restarts;
        pm.quarantines->add(st.quarantines - pm.quarantines_seen);
        pm.quarantines_seen = st.quarantines;
        pm.checksum_failures->add(st.checksum_failures - pm.checksums_seen);
        pm.checksums_seen = st.checksum_failures;
        pm.state->set(static_cast<double>(static_cast<int>(p.state())));
        pm.rung->set(static_cast<double>(static_cast<std::uint32_t>(rung)));
        pm.count->set(static_cast<double>(p.last_good_count()));
        frames_shed += st.shed_inbox_overflow;
        // pole_stats are cumulative over the pole's lifetime (they do not
        // reset on restart, unlike the supervisor's epoch-scoped health),
        // so the fleet rollup is a plain monotonic sum.
        frames_total += st.processed;
        dropped_total += st.processed - st.good_frames;
        quarantines_total += st.quarantines;
    }

    aggregate_gauge_->set(static_cast<double>(snap.aggregate));
    included_gauge_->set(static_cast<double>(snap.included));
    frames_shed_counter_->add(frames_shed - frames_shed_seen_);
    frames_shed_seen_ = frames_shed;

    fleet_frames_counter_->add(frames_total - fleet_frames_seen_);
    fleet_frames_seen_ = frames_total;
    fleet_dropped_counter_->add(dropped_total - fleet_dropped_seen_);
    fleet_dropped_seen_ = dropped_total;
    fleet_quarantines_counter_->add(quarantines_total - fleet_quarantines_seen_);
    fleet_quarantines_seen_ = quarantines_total;
    excluded_gauge_->set(static_cast<double>(poles_.size() - snap.included));
    max_staleness_gauge_->set(static_cast<double>(max_staleness));

    board_.publish(snap);
}

std::vector<obs::slo_rule> default_fleet_slo_rules() {
    // Expressed in the rule grammar rather than built struct-by-struct:
    // the defaults double as living documentation of slo.hpp's syntax.
    return obs::parse_slo_rules(R"(
# Included counts must stay fresh (the staleness bound is 10 ticks).
alert occupancy_stale if value(hawc_fleet_max_staleness_ticks) > 6 for 3 resolve 3 severity warning
# Any pole excluded from the aggregate is degraded coverage.
alert poles_excluded if value(hawc_fleet_excluded_poles) > 0 for 2 resolve 4 severity error
# Sustained drop ratio across the fleet (multi-window burn rate).
alert drop_ratio if ratio(hawc_fleet_frames_dropped_total/hawc_fleet_frames_total) > 0.05 window 8/32 resolve 8 severity error
# Quarantines per tick; steady-state fleets quarantine ~never.
alert quarantine_rate if rate(hawc_fleet_quarantines_total) > 0.02 window 16/64 resolve 16 severity critical
)");
}

fleet_replay_result replay_corpus_set(fleet_manager& fleet,
                                      const replay::pole_corpus_set& set,
                                      std::uint64_t drain_ticks) {
    HAWC_REQUIRE(set.pole_count() == fleet.pole_count(),
                 "corpus set pole count must match the fleet");
    std::size_t longest = 0;
    for (std::size_t i = 0; i < set.poles.size(); ++i) {
        HAWC_REQUIRE(set.poles[i].corpus.base_seed == fleet.pole(i).stream_seed(),
                     "pole stream seed must equal its corpus base_seed");
        longest = std::max(longest, set.poles[i].corpus.size());
    }

    fleet_replay_result result;
    for (std::size_t frame = 0; frame < longest; ++frame) {
        for (std::size_t i = 0; i < set.poles.size(); ++i) {
            const auto& corpus = set.poles[i].corpus;
            if (frame >= corpus.size()) continue;
            link_message msg;
            msg.frame_index = frame;
            msg.ground_truth = corpus.frames[frame].ground_truth;
            msg.cloud = corpus.frames[frame].cloud;
            fleet.submit(i, std::move(msg));
            ++result.frames_submitted;
        }
        fleet.tick();
        ++result.ticks;
    }
    for (std::uint64_t i = 0; i < drain_ticks; ++i) {
        fleet.tick();
        ++result.ticks;
    }
    return result;
}

fleet_replay_result replay_container_set(fleet_manager& fleet,
                                         replay::container_reader& reader,
                                         std::uint64_t drain_ticks) {
    HAWC_REQUIRE(reader.kind() == replay::container_kind::corpus_set,
                 "streaming fleet replay needs a corpus-set container");
    HAWC_REQUIRE(reader.stream_count() == fleet.pole_count(),
                 "container stream count must match the fleet");
    std::uint64_t longest = 0;
    for (std::uint32_t s = 0; s < reader.stream_count(); ++s) {
        HAWC_REQUIRE(reader.stream(s).base_seed == fleet.pole(s).stream_seed(),
                     "pole stream seed must equal its container base_seed");
        longest = std::max(longest, reader.frame_count(s));
    }
    // One hot chunk per pole keeps the tick-order round-robin from
    // thrashing a single cache slot.
    if (reader.cache_capacity() < fleet.pole_count()) {
        reader.set_cache_capacity(fleet.pole_count());
    }

    fleet_replay_result result;
    for (std::uint64_t frame = 0; frame < longest; ++frame) {
        for (std::uint32_t s = 0; s < reader.stream_count(); ++s) {
            if (frame >= reader.frame_count(s)) continue;
            const replay::frame_record& record = reader.frame(s, frame);
            link_message msg;
            msg.frame_index = frame;
            msg.ground_truth = record.ground_truth;
            msg.cloud = record.cloud;
            fleet.submit(s, std::move(msg));
            ++result.frames_submitted;
        }
        fleet.tick();
        ++result.ticks;
    }
    for (std::uint64_t i = 0; i < drain_ticks; ++i) {
        fleet.tick();
        ++result.ticks;
    }
    return result;
}

}  // namespace hawc::fleet
