#pragma once

// Lock-free occupancy snapshot service: the read side of the fleet. The
// fleet manager publishes one snapshot per tick (single writer); any
// number of reader threads take consistent snapshots without blocking
// the writer or each other. The board is a seqlock over per-pole slots
// whose fields are all relaxed atomics — no mutex anywhere on this path,
// no torn reads, and the sequence check rejects any snapshot that
// overlapped a publish, so a reader never mixes two ticks' data.
//
//   writer: seq -> odd, fence, store fields (relaxed), fence, seq -> even
//   reader: s1 = seq (acquire); odd? retry : fence, load fields
//           (relaxed), fence, s2 = seq; s1 != s2? retry
//
// Every snapshot carries the tick it was published at plus per-pole
// update ticks, making staleness an explicit, testable bound
// (within_staleness) instead of an implicit hope. occupancy_reader adds
// read-side caching keyed on the board version, so a hot dashboard loop
// costs one atomic load per poll until the fleet actually publishes.

#include <atomic>
#include <cstdint>
#include <vector>

namespace hawc::fleet {

/// Fleet-level degradation rung of one pole, mildest first — the fleet
/// mirror of the per-frame ladder in runtime/health.hpp.
enum class pole_rung : std::uint32_t {
    live,         // fresh counts flowing
    stale_count,  // serving its last good count within the staleness bound
    excluded,     // no usable data; removed from the aggregate
};

const char* to_string(pole_rung rung);

/// One pole's published occupancy.
struct pole_occupancy {
    std::uint64_t count = 0;         // latest good people count
    std::uint64_t epoch = 0;         // supervisor restart epoch (health.hpp)
    std::uint64_t updated_tick = 0;  // tick the count was last refreshed
    pole_rung rung = pole_rung::excluded;

    bool operator==(const pole_occupancy&) const = default;
};

/// A consistent point-in-time view of the whole fleet.
struct occupancy_snapshot {
    std::uint64_t tick = 0;     // fleet tick this snapshot was published at
    std::uint64_t version = 0;  // publish counter (monotonic)
    std::uint64_t aggregate = 0;  // sum of counts over included poles
    std::uint32_t included = 0;   // poles contributing to the aggregate
    std::vector<pole_occupancy> poles;

    /// True when every included (non-excluded) pole's count is at most
    /// `max_age_ticks` old as of `now_tick` — the service's staleness
    /// contract: data older than the bound must be excluded, not served.
    bool within_staleness(std::uint64_t now_tick, std::uint64_t max_age_ticks) const;

    bool operator==(const occupancy_snapshot&) const = default;
};

/// Single-writer / multi-reader seqlock board. Capacity is fixed at
/// construction; publish() accepts snapshots with up to that many poles.
class occupancy_board {
public:
    explicit occupancy_board(std::size_t capacity);

    occupancy_board(const occupancy_board&) = delete;
    occupancy_board& operator=(const occupancy_board&) = delete;

    /// Publish a snapshot. Single writer only (the fleet tick loop);
    /// wait-free for readers — they retry, the writer never blocks.
    void publish(const occupancy_snapshot& snap);

    /// Take a consistent snapshot; retries while a publish is in flight.
    occupancy_snapshot read() const;

    /// Cheap freshness probe: number of publishes so far. One relaxed
    /// load — poll this before paying for a full read().
    std::uint64_t version() const {
        return seq_.load(std::memory_order_relaxed) / 2;
    }

    std::size_t capacity() const { return slots_.size(); }

private:
    struct slot {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> epoch{0};
        std::atomic<std::uint64_t> updated_tick{0};
        std::atomic<std::uint32_t> rung{
            static_cast<std::uint32_t>(pole_rung::excluded)};
    };

    std::atomic<std::uint64_t> seq_{0};  // odd while a publish is in flight
    std::atomic<std::uint64_t> tick_{0};
    std::atomic<std::uint64_t> aggregate_{0};
    std::atomic<std::uint32_t> included_{0};
    std::atomic<std::uint32_t> pole_count_{0};
    std::vector<slot> slots_;
};

/// Read-side cache over a board: re-reads only when the board's version
/// moved, so steady-state polling is one atomic load. One reader object
/// per consumer thread (the cache itself is not synchronised).
class occupancy_reader {
public:
    explicit occupancy_reader(const occupancy_board& board) : board_{&board} {}

    /// The freshest snapshot, served from cache when the board has not
    /// published since the last call.
    const occupancy_snapshot& snapshot();

    std::uint64_t cache_hits() const { return hits_; }
    std::uint64_t refreshes() const { return refreshes_; }

private:
    const occupancy_board* board_;
    occupancy_snapshot cached_;
    bool have_cached_ = false;
    std::uint64_t hits_ = 0;
    std::uint64_t refreshes_ = 0;
};

}  // namespace hawc::fleet
