#include "fleet/pole_link.hpp"

#include <cstring>

#include "replay/binary_io.hpp"

namespace hawc::fleet {

std::uint64_t message_checksum(const link_message& msg) {
    replay::byte_writer bytes;
    bytes.u64(msg.frame_index);
    bytes.u32(msg.ground_truth);
    bytes.u64(static_cast<std::uint64_t>(msg.cloud.size()));
    for (const auto& p : msg.cloud) {
        bytes.f64(p.x);
        bytes.f64(p.y);
        bytes.f64(p.z);
    }
    return replay::fnv1a64(bytes.bytes().data(), bytes.bytes().size());
}

bool verify_checksum(const link_message& msg) {
    return msg.checksum == message_checksum(msg);
}

namespace {

// Flip the lowest mantissa bit of one coordinate: the smallest on-wire
// corruption a checksum must still catch.
void flip_coordinate_bit(double& value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    bits ^= 1ull;
    std::memcpy(&value, &bits, sizeof value);
}

}  // namespace

void pole_link::send(link_message msg) {
    ++stats_.sent;
    msg.checksum = message_checksum(msg);

    if (chaos_.chance(config_.drop_prob)) {
        ++stats_.dropped;
        return;
    }

    if (chaos_.chance(config_.corrupt_prob)) {
        ++stats_.corrupted;
        if (msg.cloud.empty()) {
            msg.checksum ^= 1ull;
        } else {
            const auto i =
                static_cast<std::size_t>(chaos_.uniform_index(msg.cloud.size()));
            switch (chaos_.uniform_index(3)) {
                case 0: flip_coordinate_bit(msg.cloud[i].x); break;
                case 1: flip_coordinate_bit(msg.cloud[i].y); break;
                default: flip_coordinate_bit(msg.cloud[i].z); break;
            }
        }
    }

    std::size_t due_in = 0;
    if (config_.delay_ticks_max > 0 && chaos_.chance(config_.delay_prob)) {
        ++stats_.delayed;
        due_in = 1 + static_cast<std::size_t>(
                         chaos_.uniform_index(config_.delay_ticks_max));
    }

    const bool duplicate = chaos_.chance(config_.duplicate_prob);
    const bool reorder = !queue_.empty() && chaos_.chance(config_.reorder_prob);

    in_flight entry{std::move(msg), due_in};
    if (reorder) {
        ++stats_.reordered;
        // Jump ahead of the current queue head: the classic UDP
        // overtaking pattern.
        queue_.push_front(entry);
    } else {
        queue_.push_back(entry);
    }
    if (duplicate) {
        ++stats_.duplicated;
        queue_.push_back(std::move(entry));
    }
}

std::vector<link_message> pole_link::receive() {
    std::vector<link_message> due;
    std::deque<in_flight> still_pending;
    for (auto& entry : queue_) {
        if (entry.due_in == 0) {
            ++stats_.delivered;
            due.push_back(std::move(entry.msg));
        } else {
            --entry.due_in;
            still_pending.push_back(std::move(entry));
        }
    }
    queue_ = std::move(still_pending);
    return due;
}

}  // namespace hawc::fleet
