#include "fleet/pole_runtime.hpp"

#include <algorithm>

#include "replay/replay_driver.hpp"

namespace hawc::fleet {

namespace {

// Fixed stream indices carving the pole's seed space: frame rng streams
// use frame_seed(seed, frame_index) directly, so the link and backoff
// streams hide behind indices no real corpus reaches.
constexpr std::size_t link_stream_index = 0xf1ee71a5;
constexpr std::size_t backoff_stream_index = 0xbac0ff;

}  // namespace

const char* to_string(pole_state state) {
    switch (state) {
        case pole_state::live: return "live";
        case pole_state::probation: return "probation";
        case pole_state::quarantined: return "quarantined";
    }
    return "unknown";
}

pole_runtime::pole_runtime(std::string pole_id, std::uint64_t seed,
                           const supervisor_config& supervisor,
                           const link_fault_config& link,
                           const watchdog_config& watchdog,
                           const human_classifier& primary,
                           const human_classifier* fallback, std::size_t max_inbox)
    : id_{std::move(pole_id)},
      stream_seed_{seed},
      watchdog_{watchdog},
      max_inbox_{std::max<std::size_t>(1, max_inbox)},
      supervisor_{supervisor, primary, fallback},
      link_{link, replay::frame_seed(seed, link_stream_index)},
      backoff_rng_{replay::frame_seed(seed, backoff_stream_index)} {}

void pole_runtime::submit(link_message msg) { link_.send(std::move(msg)); }

void pole_runtime::attach_events(telemetry::event_sink* sink) {
    events_.set_target(sink);
    events_.set_pole(id_);
    supervisor_.set_event_sink(sink != nullptr ? &events_ : nullptr);
}

void pole_runtime::enable_flight_recorder(const obs::flight_recorder_config& config,
                                          const obs::event_log* events,
                                          const telemetry::trace_sink* spans) {
    recorder_.emplace(config, id_, stream_seed_);
    recorder_->attach_sources(events, spans);
}

void pole_runtime::emit(telemetry::event ev) {
    if (events_.target() != nullptr) events_.publish(ev);
}

void pole_runtime::run_tick(std::uint64_t tick, std::size_t budget) {
    events_.set_tick(tick);
    auto arrivals = link_.receive();

    if (state_ == pole_state::quarantined) {
        stats_.rejected_quarantined += arrivals.size();
        if (tick < resume_tick_) return;
        // Backoff expired: restart the supervisor (bumping its health
        // epoch) and start proving a recovery streak.
        supervisor_.restart();
        if (recorder_) recorder_->reset_ring();  // new epoch, new black box
        ++stats_.restarts;
        state_ = pole_state::probation;
        probation_progress_ = 0;
        last_progress_tick_ = tick;
        {
            telemetry::event ev =
                telemetry::make_event(telemetry::event_kind::pole_restarted,
                                      telemetry::event_severity::info, "probation");
            ev.add_field("attempt", static_cast<double>(attempt_));
            emit(ev);
        }
        return;  // first frames flow next tick; this one was spent restarting
    }

    for (auto& msg : arrivals) {
        if (inbox_.size() >= max_inbox_) {
            inbox_.pop_front();
            ++stats_.shed_inbox_overflow;
        }
        inbox_.push_back(std::move(msg));
    }

    std::size_t used = 0;
    while (used < budget && !inbox_.empty() && state_ != pole_state::quarantined) {
        link_message msg = std::move(inbox_.front());
        inbox_.pop_front();
        ++used;
        process_message(std::move(msg), tick);
    }

    if (state_ == pole_state::live && watchdog_.max_silent_ticks > 0 &&
        tick - last_progress_tick_ > watchdog_.max_silent_ticks) {
        quarantine(tick);  // hung: nothing processed for too long
    }
}

void pole_runtime::process_message(link_message msg, std::uint64_t tick) {
    if (!verify_checksum(msg)) {
        ++stats_.checksum_failures;
        ++checksum_streak_;
        {
            telemetry::event ev =
                telemetry::make_event(telemetry::event_kind::link_corruption,
                                      telemetry::event_severity::warning, "checksum");
            ev.frame = msg.frame_index;
            ev.add_field("streak", static_cast<double>(checksum_streak_));
            emit(ev);
        }
        if (checksum_streak_ >= watchdog_.max_checksum_failures) quarantine(tick);
        return;
    }
    checksum_streak_ = 0;

    if (seen_recently(msg.frame_index)) {
        ++stats_.duplicates_dropped;
        return;
    }

    // The same per-frame rng stream a solo replay_corpus run would use:
    // healthy poles in a faulted fleet stay bit-identical to their
    // single-supervisor baselines.
    rng random{replay::frame_seed(stream_seed_, static_cast<std::size_t>(msg.frame_index))};
    // The carry must be captured before process() mutates it: a postmortem
    // replay re-arms the ladder with the oldest retained frame's carry.
    supervisor_carry carry_before;
    if (recorder_) carry_before = supervisor_.carry();
    const frame_report report = supervisor_.process(msg.cloud, random);
    ++stats_.processed;
    last_progress_tick_ = tick;
    if (record_history_) history_.push_back({msg.frame_index, report.count, report.status});
    if (recorder_ &&
        recorder_->record(msg.frame_index, msg.ground_truth, std::move(msg.cloud), carry_before,
                          report)) {
        telemetry::event ev =
            telemetry::make_event(telemetry::event_kind::recorder_dump,
                                  telemetry::event_severity::error, "deadline_storm");
        ev.frame = msg.frame_index;
        ev.add_field("pending", static_cast<double>(recorder_->pending_dumps()));
        emit(ev);
    }

    if (report.status == frame_status::dropped) {
        ++dropped_streak_;
        // A drop during probation is a flap: back to quarantine with the
        // escalated backoff rather than oscillating live/quarantined.
        if (state_ == pole_state::probation ||
            dropped_streak_ >= watchdog_.max_consecutive_dropped) {
            quarantine(tick);
        }
        return;
    }

    dropped_streak_ = 0;
    ++stats_.good_frames;
    has_good_ = true;
    last_good_count_ = report.count;
    last_good_tick_ = tick;
    if (state_ == pole_state::probation) {
        ++probation_progress_;
        if (probation_progress_ >= watchdog_.probation_recovery_streak) {
            state_ = pole_state::live;
            attempt_ = 0;  // a real recovery clears the escalation
            telemetry::event ev =
                telemetry::make_event(telemetry::event_kind::pole_recovered,
                                      telemetry::event_severity::info, "live");
            ev.frame = msg.frame_index;
            ev.add_field("streak", static_cast<double>(probation_progress_));
            emit(ev);
        }
    }
}

void pole_runtime::quarantine(std::uint64_t tick) {
    ++stats_.quarantines;
    stats_.discarded_on_quarantine += inbox_.size();
    inbox_.clear();

    // Capped exponential backoff with deterministic jitter: attempt k
    // waits min(cap, base << k) ticks plus up to jitter_fraction of that,
    // drawn from this pole's own rng stream.
    const std::size_t shift = std::min<std::size_t>(attempt_, 32);
    std::uint64_t backoff = watchdog_.backoff_base_ticks << shift;
    backoff = std::min(backoff, watchdog_.backoff_cap_ticks);
    backoff = std::max<std::uint64_t>(backoff, 1);
    const auto jitter_span = static_cast<std::uint64_t>(
        watchdog_.backoff_jitter_fraction * static_cast<double>(backoff));
    const std::uint64_t jitter =
        jitter_span > 0 ? backoff_rng_.uniform_index(jitter_span + 1) : 0;

    state_ = pole_state::quarantined;
    resume_tick_ = tick + backoff + jitter;
    ++attempt_;
    dropped_streak_ = 0;
    checksum_streak_ = 0;
    probation_progress_ = 0;

    {
        telemetry::event ev =
            telemetry::make_event(telemetry::event_kind::pole_quarantined,
                                  telemetry::event_severity::error, "watchdog");
        ev.add_field("attempt", static_cast<double>(attempt_));
        ev.add_field("resume_tick", static_cast<double>(resume_tick_));
        emit(ev);
    }

    // The black box closes its loop here: quarantine is exactly the
    // moment the last N frames are forensically interesting.
    if (recorder_ && recorder_->trigger_dump(obs::dump_trigger::quarantine, tick)) {
        telemetry::event ev =
            telemetry::make_event(telemetry::event_kind::recorder_dump,
                                  telemetry::event_severity::error, "quarantine");
        ev.add_field("pending", static_cast<double>(recorder_->pending_dumps()));
        emit(ev);
    }
}

bool pole_runtime::seen_recently(std::uint64_t frame_index) {
    const std::uint64_t tagged = frame_index + 1;  // 0 marks an empty slot
    for (std::size_t i = 0; i < recent_filled_; ++i) {
        if (recent_[i] == tagged) return true;
    }
    recent_[recent_next_] = tagged;
    recent_next_ = (recent_next_ + 1) % recent_.size();
    if (recent_filled_ < recent_.size()) ++recent_filled_;
    return false;
}

}  // namespace hawc::fleet
