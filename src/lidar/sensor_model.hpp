#pragma once

// Parametric model of a multi-channel spinning LiDAR, defaulted to the
// cost-effective 32-channel sensor the paper deploys (Ouster OS0 class):
// wide vertical field of view, modest angular resolution, and strongly
// distance-dependent return density.

#include <cstddef>
#include <vector>

#include "geom/vec3.hpp"

namespace hawc {

/// Static description of the sensor optics and noise behaviour.
struct sensor_config {
    std::size_t channels = 32;           // vertical beams
    // The real OS0 spreads 32 channels over 90 degrees vertically; beams
    // pointing at the sky or the pole never return anything from the
    // walkway ROI, so this model concentrates the configured channels on
    // the ROI-relevant elevation band (equivalent to a tilted mount with
    // a tighter-FoV unit) — see DESIGN.md, substitutions.
    double vertical_fov_deg = 22.5;      // total vertical span
    double vertical_center_deg = -9.0;   // band centre (negative = downward)
    double azimuth_fov_deg = 90.0;       // scanned sector (paper: ~90 deg ROI)
    double azimuth_start_deg = -45.0;    // sector start relative to +x
    std::size_t azimuth_steps = 2048;    // samples across the sector
    double max_range_m = 50.0;           // hard range cutoff
    double range_noise_sigma_m = 0.03;   // Gaussian ranging noise (1 sigma)

    // Return-probability model: p = reflectivity * clamp(a - range/b, lo, 1).
    // Captures the paper's observation that far targets reflect too little
    // light for a 32-channel sensor to register reliably.
    double dropout_scale_a = 1.35;
    double dropout_scale_b = 38.0;
    double dropout_floor = 0.10;

    /// Mount height above ground; the paper's poles put the sensor at 3 m,
    /// so ground returns appear near z = -3 in the sensor frame.
    double mount_height_m = 3.0;
};

/// One emitted beam direction (unit vector in the sensor frame).
struct beam {
    vec3 direction;
    std::size_t channel = 0;
    std::size_t azimuth_step = 0;
};

/// Precomputed table of all beam directions for a configuration.
/// Channels are spaced uniformly across the vertical FoV and azimuth
/// steps uniformly across the scanned sector.
class beam_table {
public:
    explicit beam_table(const sensor_config& config);

    const std::vector<beam>& beams() const { return beams_; }
    std::size_t size() const { return beams_.size(); }
    const sensor_config& config() const { return config_; }

private:
    sensor_config config_;
    std::vector<beam> beams_;
};

/// Probability that a return at `range` from a surface with the given
/// reflectivity registers, under `config`'s dropout model.
double return_probability(const sensor_config& config, double range, double reflectivity);

}  // namespace hawc
