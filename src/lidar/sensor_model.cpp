#include "lidar/sensor_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace hawc {

beam_table::beam_table(const sensor_config& config) : config_{config} {
    HAWC_REQUIRE(config.channels >= 2, "sensor needs at least two channels");
    HAWC_REQUIRE(config.azimuth_steps >= 2, "sensor needs at least two azimuth steps");
    HAWC_REQUIRE(config.vertical_fov_deg > 0.0 && config.vertical_fov_deg < 180.0,
                 "vertical FoV must be in (0, 180)");

    constexpr double deg = std::numbers::pi / 180.0;
    const double elevation_lo =
        (config.vertical_center_deg - 0.5 * config.vertical_fov_deg) * deg;
    const double elevation_step =
        config.vertical_fov_deg * deg / static_cast<double>(config.channels - 1);
    const double azimuth_lo = config.azimuth_start_deg * deg;
    const double azimuth_step =
        config.azimuth_fov_deg * deg / static_cast<double>(config.azimuth_steps - 1);

    beams_.reserve(config.channels * config.azimuth_steps);
    for (std::size_t step = 0; step < config.azimuth_steps; ++step) {
        const double azimuth = azimuth_lo + azimuth_step * static_cast<double>(step);
        for (std::size_t channel = 0; channel < config.channels; ++channel) {
            const double elevation = elevation_lo + elevation_step * static_cast<double>(channel);
            beam b;
            b.direction = {std::cos(elevation) * std::cos(azimuth),
                           std::cos(elevation) * std::sin(azimuth), std::sin(elevation)};
            b.channel = channel;
            b.azimuth_step = step;
            beams_.push_back(b);
        }
    }
}

double return_probability(const sensor_config& config, double range, double reflectivity) {
    const double geometric =
        std::clamp(config.dropout_scale_a - range / config.dropout_scale_b, config.dropout_floor,
                   1.0);
    return std::clamp(reflectivity * geometric, 0.0, 1.0);
}

}  // namespace hawc
