#pragma once

// The LiDAR scanner: casts every beam of a sensor against a primitive
// scene and produces one point cloud per scan, with range noise, dropout,
// and ground returns — the raw capture the HAWC-CC pipeline ingests.

#include <span>

#include "common/rng.hpp"
#include "lidar/primitives.hpp"
#include "lidar/sensor_model.hpp"
#include "pointcloud/point_cloud.hpp"

namespace hawc {

/// A returned point together with the entity that produced it (ground
/// returns carry entity_id = ground_entity_id). Entity attribution is
/// simulation ground truth only; the pipeline never sees it.
struct lidar_return {
    vec3 position;       // sensor frame: sensor at origin, z up
    double range = 0.0;
    int entity_id = -1;
    std::size_t channel = 0;
};

inline constexpr int ground_entity_id = -2;

/// Full result of one scan.
struct scan_result {
    std::vector<lidar_return> returns;

    /// The positions only, as a cloud (what the real sensor outputs).
    point_cloud to_cloud() const;

    /// Positions of returns belonging to a specific entity.
    point_cloud entity_cloud(int entity_id) const;
};

/// Scan configuration beyond the sensor optics.
struct scan_options {
    bool include_ground = true;        // simulate ground-plane returns
    double ground_reflectivity = 0.55; // asphalt/concrete
    double ground_noise_sigma_m = 0.05; // extra z jitter on ground returns
};

/// Immutable scanner bound to one sensor configuration. Thread-compatible:
/// scans take their rng by reference and share no mutable state.
class scanner {
public:
    explicit scanner(const sensor_config& config) : beams_{config} {}

    const sensor_config& config() const { return beams_.config(); }

    /// Cast all beams against `scene` (plus the ground plane at
    /// z = -mount_height) and return the registered points.
    scan_result scan(std::span<const scene_primitive> scene, rng& random,
                     const scan_options& options = {}) const;

private:
    beam_table beams_;
};

}  // namespace hawc
