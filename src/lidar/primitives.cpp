#include "lidar/primitives.hpp"

#include <algorithm>
#include <cmath>

namespace hawc {

namespace {

constexpr double hit_epsilon = 1e-9;

/// Solve a*t^2 + b*t + c = 0 and return the smallest positive root.
std::optional<double> smallest_positive_root(double a, double b, double c) {
    const double disc = b * b - 4.0 * a * c;
    if (disc < 0.0) return std::nullopt;
    const double sq = std::sqrt(disc);
    const double t0 = (-b - sq) / (2.0 * a);
    const double t1 = (-b + sq) / (2.0 * a);
    if (t0 > hit_epsilon) return t0;
    if (t1 > hit_epsilon) return t1;
    return std::nullopt;
}

}  // namespace

std::optional<double> intersect(const ray& r, const sphere& s) {
    const vec3 oc = r.origin - s.center;
    return smallest_positive_root(1.0, 2.0 * oc.dot(r.direction),
                                  oc.norm_sq() - s.radius * s.radius);
}

std::optional<double> intersect(const ray& r, const capsule& c) {
    // Cylinder part: distance between ray and segment axis equals radius.
    const vec3 axis = c.b - c.a;
    const double axis_len_sq = axis.norm_sq();
    if (axis_len_sq < hit_epsilon) {
        return intersect(r, sphere{c.a, c.radius});
    }
    const vec3 d = r.direction;
    const vec3 m = r.origin - c.a;
    const vec3 n = axis / std::sqrt(axis_len_sq);

    const vec3 d_perp = d - n * d.dot(n);
    const vec3 m_perp = m - n * m.dot(n);

    std::optional<double> best;
    auto consider = [&](std::optional<double> t) {
        if (t && (!best || *t < *best)) best = t;
    };

    const double a = d_perp.norm_sq();
    if (a > hit_epsilon) {
        const double b = 2.0 * d_perp.dot(m_perp);
        const double cc = m_perp.norm_sq() - c.radius * c.radius;
        if (auto t = smallest_positive_root(a, b, cc)) {
            // Accept only if the hit projects inside the segment.
            const double s = (r.at(*t) - c.a).dot(n);
            if (s >= 0.0 && s * s <= axis_len_sq) consider(t);
        }
    }
    // End caps.
    consider(intersect(r, sphere{c.a, c.radius}));
    consider(intersect(r, sphere{c.b, c.radius}));
    return best;
}

std::optional<double> intersect(const ray& r, const box& b) {
    // Slab method.
    double t_near = -std::numeric_limits<double>::infinity();
    double t_far = std::numeric_limits<double>::infinity();
    const double origin[3] = {r.origin.x, r.origin.y, r.origin.z};
    const double dir[3] = {r.direction.x, r.direction.y, r.direction.z};
    const double lo[3] = {b.bounds.lo.x, b.bounds.lo.y, b.bounds.lo.z};
    const double hi[3] = {b.bounds.hi.x, b.bounds.hi.y, b.bounds.hi.z};
    for (int axis = 0; axis < 3; ++axis) {
        if (std::abs(dir[axis]) < hit_epsilon) {
            if (origin[axis] < lo[axis] || origin[axis] > hi[axis]) return std::nullopt;
            continue;
        }
        double t0 = (lo[axis] - origin[axis]) / dir[axis];
        double t1 = (hi[axis] - origin[axis]) / dir[axis];
        if (t0 > t1) std::swap(t0, t1);
        t_near = std::max(t_near, t0);
        t_far = std::min(t_far, t1);
        if (t_near > t_far) return std::nullopt;
    }
    if (t_near > hit_epsilon) return t_near;
    if (t_far > hit_epsilon) return t_far;
    return std::nullopt;
}

std::optional<double> intersect(const ray& r, const vertical_cylinder& c) {
    // 2D circle intersection in the xy plane, then a z-range check.
    const double dx = r.direction.x;
    const double dy = r.direction.y;
    const double ox = r.origin.x - c.base.x;
    const double oy = r.origin.y - c.base.y;
    const double a = dx * dx + dy * dy;

    std::optional<double> best;
    auto in_height = [&](double t) {
        const double z = r.origin.z + r.direction.z * t;
        return z >= c.base.z && z <= c.base.z + c.height;
    };

    if (a > hit_epsilon) {
        const double b = 2.0 * (ox * dx + oy * dy);
        const double cc = ox * ox + oy * oy - c.radius * c.radius;
        const double disc = b * b - 4.0 * a * cc;
        if (disc >= 0.0) {
            const double sq = std::sqrt(disc);
            for (double t : {(-b - sq) / (2.0 * a), (-b + sq) / (2.0 * a)}) {
                if (t > hit_epsilon && in_height(t) && (!best || t < *best)) best = t;
            }
        }
    }

    // Top/bottom disks.
    if (std::abs(r.direction.z) > hit_epsilon) {
        for (double plane_z : {c.base.z, c.base.z + c.height}) {
            const double t = (plane_z - r.origin.z) / r.direction.z;
            if (t > hit_epsilon) {
                const vec3 p = r.at(t);
                const double rx = p.x - c.base.x;
                const double ry = p.y - c.base.y;
                if (rx * rx + ry * ry <= c.radius * c.radius && (!best || t < *best)) best = t;
            }
        }
    }
    return best;
}

std::optional<double> intersect(const ray& r, const shape& s) {
    return std::visit([&](const auto& geom) { return intersect(r, geom); }, s);
}

aabb shape_bounds(const shape& s) {
    return std::visit(
        [](const auto& geom) -> aabb {
            using T = std::decay_t<decltype(geom)>;
            if constexpr (std::is_same_v<T, sphere>) {
                const vec3 r{geom.radius, geom.radius, geom.radius};
                return {geom.center - r, geom.center + r};
            } else if constexpr (std::is_same_v<T, capsule>) {
                aabb b;
                const vec3 r{geom.radius, geom.radius, geom.radius};
                b.expand(geom.a - r);
                b.expand(geom.a + r);
                b.expand(geom.b - r);
                b.expand(geom.b + r);
                return b;
            } else if constexpr (std::is_same_v<T, box>) {
                return geom.bounds;
            } else {
                const vec3 r{geom.radius, geom.radius, 0.0};
                return {geom.base - r, geom.base + r + vec3{0.0, 0.0, geom.height}};
            }
        },
        s);
}

}  // namespace hawc
