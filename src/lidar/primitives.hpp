#pragma once

// Ray-castable scene primitives. Humans and campus objects are composed
// of these shapes by the simulation module; the LiDAR scanner intersects
// beams against them.

#include <optional>
#include <variant>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace hawc {

/// A ray with unit direction. t-parameters are metric distances.
struct ray {
    vec3 origin;
    vec3 direction;  // must be normalized

    vec3 at(double t) const { return origin + direction * t; }
};

struct sphere {
    vec3 center;
    double radius = 1.0;
};

/// Capsule: segment from a to b with radius r (limbs, torsos).
struct capsule {
    vec3 a;
    vec3 b;
    double radius = 0.1;
};

/// Axis-aligned box (bins, benches, signage).
struct box {
    aabb bounds;
};

/// Vertical cylinder: axis parallel to z from base upward (poles, trunks).
struct vertical_cylinder {
    vec3 base;
    double height = 1.0;
    double radius = 0.1;
};

using shape = std::variant<sphere, capsule, box, vertical_cylinder>;

/// Nearest positive intersection distance of `r` with a shape, if any.
std::optional<double> intersect(const ray& r, const sphere& s);
std::optional<double> intersect(const ray& r, const capsule& c);
std::optional<double> intersect(const ray& r, const box& b);
std::optional<double> intersect(const ray& r, const vertical_cylinder& c);
std::optional<double> intersect(const ray& r, const shape& s);

/// Bounding box of a shape (used for scene statistics and culling).
aabb shape_bounds(const shape& s);

/// One primitive in a scan scene, tagged with the entity it belongs to
/// and a surface reflectivity in (0, 1] that scales return probability.
struct scene_primitive {
    shape geometry;
    int entity_id = -1;      // humans/objects get unique ids; -1 = untagged
    double reflectivity = 0.8;
};

}  // namespace hawc
