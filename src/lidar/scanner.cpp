#include "lidar/scanner.hpp"

#include <cmath>
#include <limits>

namespace hawc {

point_cloud scan_result::to_cloud() const {
    point_cloud cloud;
    cloud.reserve(returns.size());
    for (const auto& r : returns) cloud.push_back(r.position);
    return cloud;
}

point_cloud scan_result::entity_cloud(int entity_id) const {
    point_cloud cloud;
    for (const auto& r : returns) {
        if (r.entity_id == entity_id) cloud.push_back(r.position);
    }
    return cloud;
}

scan_result scanner::scan(std::span<const scene_primitive> scene, rng& random,
                          const scan_options& options) const {
    const sensor_config& cfg = beams_.config();
    scan_result result;
    result.returns.reserve(beams_.size() / 8);

    // Precompute shape bounds for a cheap reject test per beam. For the
    // scene sizes here (tens of primitives) this is the dominant win over
    // a full BVH, and keeps the scanner simple.
    std::vector<aabb> bounds;
    bounds.reserve(scene.size());
    for (const auto& prim : scene) bounds.push_back(shape_bounds(prim.geometry));

    for (const auto& b : beams_.beams()) {
        const ray beam_ray{vec3{}, b.direction};

        double best_t = std::numeric_limits<double>::infinity();
        const scene_primitive* best_prim = nullptr;

        for (std::size_t i = 0; i < scene.size(); ++i) {
            // Conservative reject: if the closest possible approach of the
            // box is farther than the best hit, skip the exact test.
            if (bounds[i].distance_sq(vec3{}) > best_t * best_t) continue;
            if (auto t = intersect(beam_ray, scene[i].geometry)) {
                if (*t < best_t && *t <= cfg.max_range_m) {
                    best_t = *t;
                    best_prim = &scene[i];
                }
            }
        }

        // Ground plane at z = -mount_height (sensor frame).
        double ground_t = std::numeric_limits<double>::infinity();
        if (options.include_ground && b.direction.z < -1e-6) {
            ground_t = -cfg.mount_height_m / b.direction.z;
        }

        const bool ground_wins = ground_t < best_t;
        const double range = ground_wins ? ground_t : best_t;
        if (!std::isfinite(range) || range > cfg.max_range_m) continue;

        const double reflectivity =
            ground_wins ? options.ground_reflectivity : best_prim->reflectivity;
        if (!random.chance(return_probability(cfg, range, reflectivity))) continue;

        const double noisy_range = range + random.normal(0.0, cfg.range_noise_sigma_m);
        if (noisy_range <= 0.0) continue;

        lidar_return ret;
        ret.position = b.direction * noisy_range;
        if (ground_wins) {
            // Ground returns scatter vertically (grass blades, debris,
            // pulley-like clutter the paper calls out); model that as
            // additional upward-biased z jitter.
            ret.position.z += std::abs(random.normal(0.0, options.ground_noise_sigma_m));
            ret.entity_id = ground_entity_id;
        } else {
            ret.entity_id = best_prim->entity_id;
        }
        ret.range = noisy_range;
        ret.channel = b.channel;
        result.returns.push_back(ret);
    }
    return result;
}

}  // namespace hawc
