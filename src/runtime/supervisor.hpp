#pragma once

// The fault-tolerant streaming runtime: a frame supervisor that runs the
// full per-capture pipeline (sanitize -> ingest -> adaptive clustering ->
// classify -> count) as supervised stages with cooperative steady-clock
// watchdog budgets, and walks a graceful-degradation ladder instead of
// crashing on bad sensor data:
//
//   rung 1  fixed_eps    adaptive-eps selection degenerate (eps pinned to a
//                        clamp bound) or over its deadline -> fixed-eps DBSCAN
//   rung 2  float_model  primary (int8) classifier throws / fails validation
//                        on a cluster -> fp32 fallback model for that cluster
//   rung 3  stale_count  unrecoverable frame -> serve the last good count,
//                        bounded by a staleness cap, then admit a zero
//
// process() never throws; every frame is accounted ok/degraded/dropped in
// the health counters. The watchdog is cooperative (stages poll a
// monotonic deadline between work items), which bounds latency without
// threads on single-core edge targets; see DESIGN.md "Fault model".

#include <atomic>
#include <cstdint>
#include <vector>

#include "counting/crowd_counter.hpp"
#include "runtime/failure.hpp"
#include "runtime/health.hpp"
#include "telemetry/event.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace hawc {

/// Classifier adapter implementing the float-model rung: try the primary
/// (typically int8), and when it throws on a cluster, retry that cluster
/// on the fallback (typically the fp32 model it was quantized from).
/// Without a fallback the failure propagates to the frame level.
class resilient_classifier final : public human_classifier {
public:
    resilient_classifier(const human_classifier& primary, const human_classifier* fallback)
        : primary_{&primary}, fallback_{fallback} {}

    bool is_human(const point_cloud& cluster, rng& random) const override;
    std::string name() const override;

    /// Safe whenever both wrapped classifiers are: the adapter itself
    /// only touches its atomic fault counters.
    bool thread_safe() const override {
        return primary_->thread_safe() && (fallback_ == nullptr || fallback_->thread_safe());
    }

    std::uint64_t fallback_activations() const { return fallbacks_.load(std::memory_order_relaxed); }
    std::uint64_t primary_faults() const { return faults_.load(std::memory_order_relaxed); }

private:
    const human_classifier* primary_;
    const human_classifier* fallback_;
    mutable std::atomic<std::uint64_t> fallbacks_{0};
    mutable std::atomic<std::uint64_t> faults_{0};
};

struct supervisor_config {
    capture_config capture{};

    /// Frames with fewer sanitized raw returns than this are rejected as
    /// truncated (a healthy outdoor scan carries thousands of returns,
    /// ground included; almost nothing arriving means the frame is gone).
    std::size_t min_raw_points = 32;

    /// Drop exact-duplicate points after ingest. Stuck beams re-reporting
    /// a return inflate local density, which corrupts both the k-NN elbow
    /// and DBSCAN core counts.
    bool dedupe_points = true;
    /// Duplicates above this fraction of the ingested cloud flag the
    /// frame degraded (a handful can be genuine coincidences).
    double duplicate_degrade_fraction = 0.05;

    /// Geometry plausibility: a pole-mounted sensor cannot see through
    /// the walkway, so returns well below the ground plane mean a range
    /// noise burst (multipath, retro-reflector). Frames where more than
    /// `below_ground_degrade_fraction` of returns sit deeper than
    /// tolerance below ground are flagged degraded.
    double below_ground_tolerance_m = 0.3;
    double below_ground_degrade_fraction = 0.01;

    // Cooperative watchdog budgets (steady clock), in ms; <= 0 disables.
    double eps_selection_deadline_ms = 100.0;
    double classification_deadline_ms = 500.0;
    double frame_deadline_ms = 1000.0;

    /// Fixed-eps rung: DBSCAN radius used when adaptive selection fails.
    /// The Table IV fixed-eps baseline region works well here.
    double fallback_eps = 0.35;

    /// Staleness cap: at most this many consecutive dropped frames are
    /// answered with the last good count before admitting zero.
    std::size_t max_stale_frames = 5;

    /// Ladder hysteresis: consecutive non-dropped frames required before
    /// the staleness budget above resets. At the default of 1 every good
    /// frame refills the budget (the pre-fleet behaviour); raising it
    /// stops an alternating good/dead fault pattern from being answered
    /// stale forever — the budget keeps draining across the flaps until a
    /// genuine recovery streak arrives.
    std::size_t recovery_streak_frames = 1;
};

/// The stale-count rung's carry-forward state: everything process()
/// consults from previous frames when deciding a frame's count and
/// status. A fresh supervisor with this state restored reproduces a
/// recorded frame sequence bit-exactly — the contract the flight
/// recorder's postmortem bundles (src/obs) are built on.
struct supervisor_carry {
    bool has_last_good = false;
    std::uint64_t last_good_count = 0;
    std::uint64_t stale_streak = 0;
    std::uint64_t good_streak = 0;

    bool operator==(const supervisor_carry&) const = default;
};

/// Outcome of one supervised frame.
struct frame_report {
    frame_status status = frame_status::ok;
    std::size_t count = 0;
    std::size_t cluster_count = 0;

    bool used_fixed_eps = false;
    bool used_float_fallback = false;
    bool served_stale = false;
    double chosen_eps = 0.0;  // the eps DBSCAN actually ran with

    stage_times times;     // ingest / clustering / classification
    double frame_ms = 0.0;  // wall-clock for the whole frame

    std::vector<failure_event> failures;
};

class frame_supervisor {
public:
    /// `primary` classifies every cluster first; `fallback` (may be null)
    /// is consulted per cluster when the primary throws. Both must
    /// outlive the supervisor.
    frame_supervisor(const supervisor_config& config, const human_classifier& primary,
                     const human_classifier* fallback = nullptr);

    /// Process one raw capture. Never throws: unrecoverable frames come
    /// back dropped, with the stale-count rung applied.
    frame_report process(const point_cloud& raw, rng& random);

    /// Health accounting as a snapshot struct. Since the telemetry
    /// migration the registry below is authoritative; this view is
    /// assembled from it (plus the exact per-stage running_stats), so
    /// existing consumers keep compiling and the numbers keep agreeing.
    /// Every reset/restart bumps the snapshot's monotonic epoch, so
    /// consumers ordering by (epoch, frames_total) never observe progress
    /// running backwards across a restart (see health.hpp::progressed).
    health_counters health() const;
    void reset_health();

    /// Watchdog restart: reset_health() plus the carry-forward state (the
    /// stale-count rung's last good count and both streak counters). A
    /// restarted supervisor serves no stale data from before its restart.
    void restart();

    /// The supervisor's metrics registry: the health counters plus the
    /// per-stage latency histograms (hawc_frame_ms, hawc_ingest_ms,
    /// hawc_clustering_ms, hawc_classification_ms, hawc_eps_selection_ms)
    /// and the stage-level counters recorded by dbscan / eps selection /
    /// classification through the telemetry handle. Scrape it with
    /// telemetry::to_prometheus / telemetry::to_json.
    telemetry::metrics_registry& metrics() { return metrics_; }
    const telemetry::metrics_registry& metrics() const { return metrics_; }

    /// Install a span sink (nullptr disables tracing). Every processed
    /// frame then records the span tree
    ///   frame -> { ingest, eps_selection, dbscan, classify -> classify_cluster* }
    /// with the frame span's code carrying the terminal frame_status.
    void set_trace_sink(telemetry::trace_sink* sink) { tracer_.set_sink(sink); }

    /// Install a structured-event sink (nullptr disables; the default).
    /// The supervisor then emits stage_failure / frame_dropped /
    /// ladder_* events as it walks the degradation ladder. Clean frames
    /// emit nothing, so with a sink installed the clean-frame cost is a
    /// handful of null checks (the obs overhead gate pins this ≤ 2%).
    void set_event_sink(telemetry::event_sink* sink) { events_ = sink; }
    telemetry::event_sink* event_sink() const { return events_; }

    /// Snapshot / restore the stale-count rung's carry state. restore
    /// does not touch metrics or the health epoch — it only arms the
    /// ladder the way a recorded supervisor's was armed, which is what
    /// postmortem replay needs.
    supervisor_carry carry() const;
    void restore_carry(const supervisor_carry& carry);

    const supervisor_config& config() const { return config_; }

    /// The counting stage (for multiplicity configuration etc.).
    crowd_counter& counter() { return counter_; }

private:
    void run_stages(const point_cloud& raw, rng& random, frame_report& report,
                    telemetry::span_id frame_span);
    void degrade(frame_report& report, pipeline_stage stage, failure_kind kind,
                 std::string detail) const;
    void emit(telemetry::event ev) const;

    /// Pointers into metrics_ for the hot path (registered once in the
    /// constructor, so recording never takes the registry lock).
    struct runtime_counters {
        telemetry::counter* frames_total = nullptr;
        telemetry::counter* frames_ok = nullptr;
        telemetry::counter* frames_degraded = nullptr;
        telemetry::counter* frames_dropped = nullptr;
        telemetry::counter* fixed_eps_fallbacks = nullptr;
        telemetry::counter* float_model_fallbacks = nullptr;
        telemetry::counter* stale_counts_served = nullptr;
        telemetry::counter* stale_cap_exhausted = nullptr;
        telemetry::counter* non_finite_points = nullptr;
        telemetry::counter* duplicate_points = nullptr;
        telemetry::counter* truncated_frames = nullptr;
        telemetry::counter* classification_truncations = nullptr;
        telemetry::counter* frame_deadline_overruns = nullptr;
        telemetry::latency_histogram* ingest_ms = nullptr;
        telemetry::latency_histogram* clustering_ms = nullptr;
        telemetry::latency_histogram* classification_ms = nullptr;
        telemetry::latency_histogram* frame_ms = nullptr;
        telemetry::latency_histogram* eps_selection_ms = nullptr;
    };

    supervisor_config config_;
    resilient_classifier classifier_;
    crowd_counter counter_;

    telemetry::metrics_registry metrics_;
    runtime_counters rc_{};
    telemetry::tracer tracer_;
    telemetry::event_sink* events_ = nullptr;
    std::uint64_t frame_seq_ = 0;

    // Exact Welford stats backing the legacy health_counters view (the
    // histograms above carry the tail percentiles; these carry mean/sd).
    running_stats ingest_stats_;
    running_stats clustering_stats_;
    running_stats classification_stats_;
    running_stats frame_stats_;

    std::uint64_t health_epoch_ = 0;

    std::size_t last_good_count_ = 0;
    std::size_t stale_streak_ = 0;
    std::size_t good_streak_ = 0;
    bool has_last_good_ = false;
};

}  // namespace hawc
