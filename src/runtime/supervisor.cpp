#include "runtime/supervisor.hpp"

#include <algorithm>
#include <cmath>

#include "clustering/adaptive_eps.hpp"
#include "clustering/dbscan.hpp"
#include "preprocess/ingest.hpp"

namespace hawc {

bool resilient_classifier::is_human(const point_cloud& cluster, rng& random) const {
    try {
        return primary_->is_human(cluster, random);
    } catch (const std::exception&) {
        ++faults_;
        if (!fallback_) throw;
        ++fallbacks_;
        return fallback_->is_human(cluster, random);
    }
}

std::string resilient_classifier::name() const {
    std::string n = primary_->name();
    if (fallback_) n += "+" + fallback_->name();
    return n;
}

frame_supervisor::frame_supervisor(const supervisor_config& config,
                                   const human_classifier& primary,
                                   const human_classifier* fallback)
    : config_{config}, classifier_{primary, fallback}, counter_{config.capture, classifier_} {}

void frame_supervisor::degrade(frame_report& report, pipeline_stage stage, failure_kind kind,
                               std::string detail) const {
    report.failures.push_back({stage, kind, std::move(detail)});
    if (report.status == frame_status::ok) report.status = frame_status::degraded;
}

namespace {

/// Exact-duplicate removal: sort-and-unique on coordinates. O(n log n) on
/// the (already ROI-cropped) ingested cloud, well below clustering cost.
point_cloud dedupe(const point_cloud& cloud) {
    std::vector<vec3> points{cloud.begin(), cloud.end()};
    std::sort(points.begin(), points.end(), [](const vec3& a, const vec3& b) {
        if (a.x != b.x) return a.x < b.x;
        if (a.y != b.y) return a.y < b.y;
        return a.z < b.z;
    });
    points.erase(std::unique(points.begin(), points.end()), points.end());
    return point_cloud{std::move(points)};
}

}  // namespace

void frame_supervisor::run_stages(const point_cloud& raw, rng& random,
                                  frame_report& report) {
    stopwatch sw;

    // ---- Ingest with fused capture validation ----
    // The validating ingest overload gathers non-finite and
    // below-ground counts inside the crop pass, so frame validation
    // costs no extra sweep of the (large) raw cloud — that is what holds
    // the clean-frame overhead budget.
    const double floor_z =
        config_.capture.walkway.ground_z() - config_.below_ground_tolerance_m;
    ingest_stats stats;
    point_cloud ingested =
        ingest(raw, config_.capture.roi, config_.capture.ground, floor_z, stats);
    const std::size_t clean_size = stats.raw_points - stats.non_finite;
    if (stats.non_finite > 0) {
        health_.non_finite_points_dropped += stats.non_finite;
        degrade(report, pipeline_stage::capture, failure_kind::non_finite_input,
                std::to_string(stats.non_finite) + " non-finite points dropped");
    }
    if (config_.below_ground_degrade_fraction > 0.0 && clean_size > 0 &&
        static_cast<double>(stats.below_floor) >
            config_.below_ground_degrade_fraction * static_cast<double>(clean_size)) {
        degrade(report, pipeline_stage::capture, failure_kind::implausible_geometry,
                std::to_string(stats.below_floor) + " returns below the ground plane");
    }
    if (clean_size < config_.min_raw_points) {
        ++health_.truncated_frames;
        report.failures.push_back({pipeline_stage::capture, failure_kind::truncated_frame,
                                   std::to_string(clean_size) + " raw points < " +
                                       std::to_string(config_.min_raw_points)});
        report.status = frame_status::dropped;
        report.times.ingest_ms = sw.elapsed_ms();
        return;
    }
    if (config_.dedupe_points && !ingested.empty()) {
        const std::size_t before = ingested.size();
        ingested = dedupe(ingested);
        const std::size_t duplicates = before - ingested.size();
        if (duplicates > 0) {
            health_.duplicate_points_dropped += duplicates;
            if (static_cast<double>(duplicates) >
                config_.duplicate_degrade_fraction * static_cast<double>(before)) {
                degrade(report, pipeline_stage::ingest, failure_kind::duplicate_points,
                        std::to_string(duplicates) + " of " + std::to_string(before) +
                            " ingested points were duplicates");
            }
        }
    }
    report.times.ingest_ms = sw.elapsed_ms();

    // A near-empty walkway is a legitimate zero, not a degradation.
    const std::size_t cluster_floor = std::max(config_.capture.min_cluster_points,
                                               config_.capture.clustering.min_points);
    if (ingested.size() < cluster_floor) return;

    // ---- Clustering: adaptive eps with the fixed-eps fallback rung ----
    // Eps selection and DBSCAN share one metric-scaled cloud and KD tree;
    // both operate in the same metric space, so the fixed-eps rung can
    // reuse them too (fallback_eps is expressed in metric space, exactly
    // as the dbscan() convenience entry point treats config.eps).
    sw.reset();
    const adaptive_eps_config& ccfg = config_.capture.clustering;
    const point_cloud scaled = ccfg.metric.scale(ingested);
    const kd_tree tree{scaled};
    bool use_fixed = false;
    failure_kind why = failure_kind::degenerate_elbow;
    std::string why_detail;
    {
        stopwatch eps_sw;
        const double eps = adaptive_epsilon_scaled(scaled, tree, ccfg);
        const double selection_ms = eps_sw.elapsed_ms();
        if (config_.eps_selection_deadline_ms > 0.0 &&
            selection_ms > config_.eps_selection_deadline_ms) {
            use_fixed = true;
            why = failure_kind::stage_deadline;
            why_detail = "eps selection took " + std::to_string(selection_ms) + " ms";
        } else if (!std::isfinite(eps) || eps <= ccfg.min_eps || eps >= ccfg.max_eps) {
            // adaptive_epsilon clamps into [min_eps, max_eps]; landing on a
            // bound means the elbow was degenerate (all-noise or
            // duplicate-flooded curve), not a genuine density estimate.
            use_fixed = true;
            why = failure_kind::degenerate_elbow;
            why_detail = "eps pinned at " + std::to_string(eps);
        } else {
            report.chosen_eps = eps;
        }
    }
    if (use_fixed) report.chosen_eps = config_.fallback_eps;

    const std::vector<point_cloud> clusters =
        dbscan_scaled(scaled, tree, report.chosen_eps, ccfg.min_points)
            .extract_clusters(ingested);
    report.times.clustering_ms = sw.elapsed_ms();
    if (use_fixed) {
        report.used_fixed_eps = true;
        ++health_.fixed_eps_fallbacks;
        degrade(report, pipeline_stage::clustering, why, std::move(why_detail));
    }

    // ---- Classification: per-cluster float-model rung + deadline ----
    sw.reset();
    const std::uint64_t fallbacks_before = classifier_.fallback_activations();
    deadline budget;
    if (config_.classification_deadline_ms > 0.0) {
        budget = deadline::after_ms(config_.classification_deadline_ms);
    }
    const cluster_count_result counted = counter_.count_clusters(clusters, random, budget);
    report.times.classification_ms = sw.elapsed_ms();
    report.count = counted.count;
    report.cluster_count = counted.examined;
    if (counted.truncated) {
        ++health_.classification_truncations;
        degrade(report, pipeline_stage::classification, failure_kind::stage_deadline,
                "classified " + std::to_string(counted.examined) + " clusters before the "
                "budget expired");
    }
    const std::uint64_t rescues = classifier_.fallback_activations() - fallbacks_before;
    if (rescues > 0) {
        report.used_float_fallback = true;
        health_.float_model_fallbacks += rescues;
        degrade(report, pipeline_stage::classification, failure_kind::classifier_fault,
                std::to_string(rescues) + " cluster(s) rescued by the fallback model");
    }
}

frame_report frame_supervisor::process(const point_cloud& raw, rng& random) {
    frame_report report;
    stopwatch frame_sw;
    try {
        run_stages(raw, random, report);
    } catch (const std::exception& e) {
        report.failures.push_back(
            {pipeline_stage::frame, failure_kind::stage_exception, e.what()});
        report.status = frame_status::dropped;
    } catch (...) {
        report.failures.push_back(
            {pipeline_stage::frame, failure_kind::stage_exception, "unknown exception"});
        report.status = frame_status::dropped;
    }
    report.frame_ms = frame_sw.elapsed_ms();

    if (config_.frame_deadline_ms > 0.0 && report.frame_ms > config_.frame_deadline_ms) {
        ++health_.frame_deadline_overruns;
        degrade(report, pipeline_stage::frame, failure_kind::stage_deadline,
                "frame took " + std::to_string(report.frame_ms) + " ms");
    }

    // ---- Stale-count rung: bounded carry-forward for dropped frames ----
    if (report.status == frame_status::dropped) {
        if (has_last_good_ && stale_streak_ < config_.max_stale_frames) {
            ++stale_streak_;
            report.count = last_good_count_;
            report.served_stale = true;
            ++health_.stale_counts_served;
        } else {
            report.count = 0;
            if (has_last_good_) ++health_.stale_cap_exhausted;
        }
    } else {
        last_good_count_ = report.count;
        stale_streak_ = 0;
        has_last_good_ = true;
    }

    // ---- Health accounting ----
    ++health_.frames_total;
    switch (report.status) {
        case frame_status::ok: ++health_.frames_ok; break;
        case frame_status::degraded: ++health_.frames_degraded; break;
        case frame_status::dropped: ++health_.frames_dropped; break;
    }
    health_.ingest_ms.add(report.times.ingest_ms);
    health_.clustering_ms.add(report.times.clustering_ms);
    health_.classification_ms.add(report.times.classification_ms);
    health_.frame_ms.add(report.frame_ms);
    return report;
}

}  // namespace hawc
