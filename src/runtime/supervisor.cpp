#include "runtime/supervisor.hpp"

#include <algorithm>
#include <cmath>

#include "clustering/adaptive_eps.hpp"
#include "clustering/dbscan.hpp"
#include "preprocess/ingest.hpp"

namespace hawc {

bool resilient_classifier::is_human(const point_cloud& cluster, rng& random) const {
    try {
        return primary_->is_human(cluster, random);
    } catch (const std::exception&) {
        ++faults_;
        if (!fallback_) throw;
        ++fallbacks_;
        return fallback_->is_human(cluster, random);
    }
}

std::string resilient_classifier::name() const {
    std::string n = primary_->name();
    if (fallback_) {
        // Two appends, not `n += "+" + name()`: GCC 12's -Wrestrict emits a
        // false positive on operator+(const char*, std::string&&) at -O3.
        n += '+';
        n += fallback_->name();
    }
    return n;
}

frame_supervisor::frame_supervisor(const supervisor_config& config,
                                   const human_classifier& primary,
                                   const human_classifier* fallback)
    : config_{config}, classifier_{primary, fallback}, counter_{config.capture, classifier_} {
    // Preallocate every hot-path metric once; process() then only touches
    // lock-free atomics through these pointers.
    rc_.frames_total = &metrics_.make_counter("hawc_frames_total", "Supervised frames processed");
    rc_.frames_ok = &metrics_.make_counter("hawc_frames_ok_total", "Frames with no fallback");
    rc_.frames_degraded =
        &metrics_.make_counter("hawc_frames_degraded_total", "Frames a fallback rung rescued");
    rc_.frames_dropped =
        &metrics_.make_counter("hawc_frames_dropped_total", "Unrecoverable frames");
    rc_.fixed_eps_fallbacks = &metrics_.make_counter("hawc_fallback_fixed_eps_total",
                                                     "Frames clustered at the fixed eps");
    rc_.float_model_fallbacks = &metrics_.make_counter("hawc_fallback_float_model_total",
                                                       "Per-cluster fp32 rescues");
    rc_.stale_counts_served = &metrics_.make_counter("hawc_stale_counts_served_total",
                                                     "Dropped frames answered with a stale count");
    rc_.stale_cap_exhausted = &metrics_.make_counter("hawc_stale_cap_exhausted_total",
                                                     "Dropped frames past the staleness cap");
    rc_.non_finite_points = &metrics_.make_counter("hawc_points_non_finite_dropped_total",
                                                   "NaN/Inf returns dropped during sanitize");
    rc_.duplicate_points = &metrics_.make_counter("hawc_points_duplicate_dropped_total",
                                                  "Exact-duplicate returns dropped");
    rc_.truncated_frames = &metrics_.make_counter("hawc_frames_truncated_total",
                                                  "Frames rejected below min_raw_points");
    rc_.classification_truncations = &metrics_.make_counter(
        "hawc_classification_truncations_total", "Cluster loops cut short by the stage budget");
    rc_.frame_deadline_overruns = &metrics_.make_counter("hawc_frame_deadline_overruns_total",
                                                         "Frames over the whole-frame deadline");
    const auto bounds = telemetry::latency_histogram::default_latency_bounds_ms();
    rc_.ingest_ms = &metrics_.make_histogram("hawc_ingest_ms", bounds, "Ingest stage latency");
    rc_.clustering_ms =
        &metrics_.make_histogram("hawc_clustering_ms", bounds, "Clustering stage latency");
    rc_.classification_ms = &metrics_.make_histogram("hawc_classification_ms", bounds,
                                                     "Classification stage latency");
    rc_.frame_ms = &metrics_.make_histogram("hawc_frame_ms", bounds, "Whole-frame latency");
    rc_.eps_selection_ms = &metrics_.make_histogram("hawc_eps_selection_ms", bounds,
                                                    "Adaptive eps selection latency");
}

health_counters frame_supervisor::health() const {
    health_counters h;
    h.epoch = health_epoch_;
    h.frames_total = rc_.frames_total->value();
    h.frames_ok = rc_.frames_ok->value();
    h.frames_degraded = rc_.frames_degraded->value();
    h.frames_dropped = rc_.frames_dropped->value();
    h.fixed_eps_fallbacks = rc_.fixed_eps_fallbacks->value();
    h.float_model_fallbacks = rc_.float_model_fallbacks->value();
    h.stale_counts_served = rc_.stale_counts_served->value();
    h.stale_cap_exhausted = rc_.stale_cap_exhausted->value();
    h.non_finite_points_dropped = rc_.non_finite_points->value();
    h.duplicate_points_dropped = rc_.duplicate_points->value();
    h.truncated_frames = rc_.truncated_frames->value();
    h.classification_truncations = rc_.classification_truncations->value();
    h.frame_deadline_overruns = rc_.frame_deadline_overruns->value();
    h.ingest_ms = ingest_stats_;
    h.clustering_ms = clustering_stats_;
    h.classification_ms = classification_stats_;
    h.frame_ms = frame_stats_;
    return h;
}

void frame_supervisor::reset_health() {
    // The epoch bump is what keeps (epoch, frames_total) monotonic for
    // snapshot readers while frames_total itself rolls back to zero.
    ++health_epoch_;
    metrics_.reset();
    ingest_stats_ = {};
    clustering_stats_ = {};
    classification_stats_ = {};
    frame_stats_ = {};
}

void frame_supervisor::restart() {
    reset_health();
    last_good_count_ = 0;
    stale_streak_ = 0;
    good_streak_ = 0;
    has_last_good_ = false;
}

supervisor_carry frame_supervisor::carry() const {
    supervisor_carry c;
    c.has_last_good = has_last_good_;
    c.last_good_count = last_good_count_;
    c.stale_streak = stale_streak_;
    c.good_streak = good_streak_;
    return c;
}

void frame_supervisor::restore_carry(const supervisor_carry& carry) {
    has_last_good_ = carry.has_last_good;
    last_good_count_ = static_cast<std::size_t>(carry.last_good_count);
    stale_streak_ = static_cast<std::size_t>(carry.stale_streak);
    good_streak_ = static_cast<std::size_t>(carry.good_streak);
}

void frame_supervisor::emit(telemetry::event ev) const {
    if (events_ == nullptr) return;
    ev.frame = frame_seq_;
    events_->publish(ev);
}

void frame_supervisor::degrade(frame_report& report, pipeline_stage stage, failure_kind kind,
                               std::string detail) const {
    if (events_ != nullptr) {
        telemetry::event ev = telemetry::make_event(
            telemetry::event_kind::stage_failure, telemetry::event_severity::warning,
            to_string(kind));
        ev.add_field("stage", static_cast<double>(static_cast<int>(stage)));
        emit(ev);
    }
    report.failures.push_back({stage, kind, std::move(detail)});
    if (report.status == frame_status::ok) report.status = frame_status::degraded;
}

namespace {

/// Exact-duplicate removal: sort-and-unique on coordinates. O(n log n) on
/// the (already ROI-cropped) ingested cloud, well below clustering cost.
point_cloud dedupe(const point_cloud& cloud) {
    std::vector<vec3> points{cloud.begin(), cloud.end()};
    std::sort(points.begin(), points.end(), [](const vec3& a, const vec3& b) {
        if (a.x != b.x) return a.x < b.x;
        if (a.y != b.y) return a.y < b.y;
        return a.z < b.z;
    });
    points.erase(std::unique(points.begin(), points.end()), points.end());
    return point_cloud{std::move(points)};
}

}  // namespace

void frame_supervisor::run_stages(const point_cloud& raw, rng& random,
                                  frame_report& report,
                                  telemetry::span_id frame_span) {
    // All stage spans nest under the frame span; stage functions called
    // below parent their own spans the same way via telem.under().
    const telemetry_handle telem{&metrics_, &tracer_, frame_span};
    stopwatch sw;

    // ---- Ingest with fused capture validation ----
    // The validating ingest overload gathers non-finite and
    // below-ground counts inside the crop pass, so frame validation
    // costs no extra sweep of the (large) raw cloud — that is what holds
    // the clean-frame overhead budget.
    telemetry::scoped_span ingest_span{telem, "ingest"};
    const double floor_z =
        config_.capture.walkway.ground_z() - config_.below_ground_tolerance_m;
    ingest_stats stats;
    point_cloud ingested =
        ingest(raw, config_.capture.roi, config_.capture.ground, floor_z, stats);
    const std::size_t clean_size = stats.raw_points - stats.non_finite;
    if (stats.non_finite > 0) {
        rc_.non_finite_points->add(stats.non_finite);
        degrade(report, pipeline_stage::capture, failure_kind::non_finite_input,
                std::to_string(stats.non_finite) + " non-finite points dropped");
    }
    if (config_.below_ground_degrade_fraction > 0.0 && clean_size > 0 &&
        static_cast<double>(stats.below_floor) >
            config_.below_ground_degrade_fraction * static_cast<double>(clean_size)) {
        degrade(report, pipeline_stage::capture, failure_kind::implausible_geometry,
                std::to_string(stats.below_floor) + " returns below the ground plane");
    }
    if (clean_size < config_.min_raw_points) {
        rc_.truncated_frames->add(1);
        if (events_ != nullptr) {
            telemetry::event ev = telemetry::make_event(
                telemetry::event_kind::stage_failure, telemetry::event_severity::warning,
                to_string(failure_kind::truncated_frame));
            ev.add_field("stage", static_cast<double>(static_cast<int>(pipeline_stage::capture)));
            ev.add_field("raw_points", static_cast<double>(clean_size));
            emit(ev);
        }
        report.failures.push_back({pipeline_stage::capture, failure_kind::truncated_frame,
                                   std::to_string(clean_size) + " raw points < " +
                                       std::to_string(config_.min_raw_points)});
        report.status = frame_status::dropped;
        report.times.ingest_ms = sw.elapsed_ms();
        return;
    }
    if (config_.dedupe_points && !ingested.empty()) {
        const std::size_t before = ingested.size();
        ingested = dedupe(ingested);
        const std::size_t duplicates = before - ingested.size();
        if (duplicates > 0) {
            rc_.duplicate_points->add(duplicates);
            if (static_cast<double>(duplicates) >
                config_.duplicate_degrade_fraction * static_cast<double>(before)) {
                degrade(report, pipeline_stage::ingest, failure_kind::duplicate_points,
                        std::to_string(duplicates) + " of " + std::to_string(before) +
                            " ingested points were duplicates");
            }
        }
    }
    ingest_span.finish();
    report.times.ingest_ms = sw.elapsed_ms();

    // A near-empty walkway is a legitimate zero, not a degradation.
    const std::size_t cluster_floor = std::max(config_.capture.min_cluster_points,
                                               config_.capture.clustering.min_points);
    if (ingested.size() < cluster_floor) return;

    // ---- Clustering: adaptive eps with the fixed-eps fallback rung ----
    // Eps selection and DBSCAN share one metric-scaled cloud and KD tree;
    // both operate in the same metric space, so the fixed-eps rung can
    // reuse them too (fallback_eps is expressed in metric space, exactly
    // as the dbscan() convenience entry point treats config.eps).
    sw.reset();
    const adaptive_eps_config& ccfg = config_.capture.clustering;
    const point_cloud scaled = ccfg.metric.scale(ingested);
    const kd_tree tree{scaled};
    bool use_fixed = false;
    failure_kind why = failure_kind::degenerate_elbow;
    std::string why_detail;
    {
        stopwatch eps_sw;
        const double eps = adaptive_epsilon_scaled(scaled, tree, ccfg, telem);
        const double selection_ms = eps_sw.elapsed_ms();
        rc_.eps_selection_ms->record(selection_ms);
        if (config_.eps_selection_deadline_ms > 0.0 &&
            selection_ms > config_.eps_selection_deadline_ms) {
            use_fixed = true;
            why = failure_kind::stage_deadline;
            why_detail = "eps selection took " + std::to_string(selection_ms) + " ms";
        } else if (!std::isfinite(eps) || eps <= ccfg.min_eps || eps >= ccfg.max_eps) {
            // adaptive_epsilon clamps into [min_eps, max_eps]; landing on a
            // bound means the elbow was degenerate (all-noise or
            // duplicate-flooded curve), not a genuine density estimate.
            use_fixed = true;
            why = failure_kind::degenerate_elbow;
            why_detail = "eps pinned at " + std::to_string(eps);
        } else {
            report.chosen_eps = eps;
        }
    }
    if (use_fixed) report.chosen_eps = config_.fallback_eps;

    const std::vector<point_cloud> clusters =
        dbscan_scaled(scaled, tree, report.chosen_eps, ccfg.min_points, telem)
            .extract_clusters(ingested);
    report.times.clustering_ms = sw.elapsed_ms();
    if (use_fixed) {
        report.used_fixed_eps = true;
        rc_.fixed_eps_fallbacks->add(1);
        degrade(report, pipeline_stage::clustering, why, std::move(why_detail));
        telemetry::event ev = telemetry::make_event(telemetry::event_kind::ladder_fixed_eps,
                                                    telemetry::event_severity::info,
                                                    to_string(why));
        ev.add_field("eps", report.chosen_eps);
        emit(ev);
    }

    // ---- Classification: per-cluster float-model rung + deadline ----
    sw.reset();
    const std::uint64_t fallbacks_before = classifier_.fallback_activations();
    deadline budget;
    if (config_.classification_deadline_ms > 0.0) {
        budget = deadline::after_ms(config_.classification_deadline_ms);
    }
    telemetry::scoped_span classify_span{telem, "classify"};
    const cluster_count_result counted =
        counter_.count_clusters(clusters, random, budget, telem.under(classify_span.id()));
    classify_span.finish();
    report.times.classification_ms = sw.elapsed_ms();
    report.count = counted.count;
    report.cluster_count = counted.examined;
    if (counted.truncated) {
        rc_.classification_truncations->add(1);
        degrade(report, pipeline_stage::classification, failure_kind::stage_deadline,
                "classified " + std::to_string(counted.examined) + " clusters before the "
                "budget expired");
    }
    const std::uint64_t rescues = classifier_.fallback_activations() - fallbacks_before;
    if (rescues > 0) {
        report.used_float_fallback = true;
        rc_.float_model_fallbacks->add(rescues);
        degrade(report, pipeline_stage::classification, failure_kind::classifier_fault,
                std::to_string(rescues) + " cluster(s) rescued by the fallback model");
        telemetry::event ev = telemetry::make_event(telemetry::event_kind::ladder_float_model,
                                                    telemetry::event_severity::info,
                                                    "fp32 fallback rescued clusters");
        ev.add_field("rescues", static_cast<double>(rescues));
        emit(ev);
    }
}

frame_report frame_supervisor::process(const point_cloud& raw, rng& random) {
    frame_report report;
    stopwatch frame_sw;
    tracer_.begin_frame(++frame_seq_);
    telemetry::scoped_span frame_span{&tracer_, "frame"};
    try {
        run_stages(raw, random, report, frame_span.id());
    } catch (const std::exception& e) {
        report.failures.push_back(
            {pipeline_stage::frame, failure_kind::stage_exception, e.what()});
        report.status = frame_status::dropped;
    } catch (...) {
        report.failures.push_back(
            {pipeline_stage::frame, failure_kind::stage_exception, "unknown exception"});
        report.status = frame_status::dropped;
    }
    report.frame_ms = frame_sw.elapsed_ms();

    if (config_.frame_deadline_ms > 0.0 && report.frame_ms > config_.frame_deadline_ms) {
        rc_.frame_deadline_overruns->add(1);
        degrade(report, pipeline_stage::frame, failure_kind::stage_deadline,
                "frame took " + std::to_string(report.frame_ms) + " ms");
    }

    // ---- Stale-count rung: bounded carry-forward for dropped frames ----
    if (report.status == frame_status::dropped) {
        good_streak_ = 0;
        if (has_last_good_ && stale_streak_ < config_.max_stale_frames) {
            ++stale_streak_;
            report.count = last_good_count_;
            report.served_stale = true;
            rc_.stale_counts_served->add(1);
            if (events_ != nullptr) {
                telemetry::event ev = telemetry::make_event(
                    telemetry::event_kind::ladder_stale_count,
                    telemetry::event_severity::warning, "serving last good count");
                ev.add_field("count", static_cast<double>(report.count));
                ev.add_field("stale_streak", static_cast<double>(stale_streak_));
                emit(ev);
            }
        } else {
            report.count = 0;
            if (has_last_good_) {
                rc_.stale_cap_exhausted->add(1);
                emit(telemetry::make_event(telemetry::event_kind::stale_cap_exhausted,
                                           telemetry::event_severity::error,
                                           "staleness budget spent, serving zero"));
            }
        }
        if (events_ != nullptr) {
            telemetry::event ev = telemetry::make_event(telemetry::event_kind::frame_dropped,
                                                        telemetry::event_severity::error,
                                                        "frame unrecoverable");
            ev.add_field("count", static_cast<double>(report.count));
            emit(ev);
        }
    } else {
        // The freshest good count is always carried forward, but the
        // staleness budget only refills after a genuine recovery streak —
        // alternating good/dead frames keep draining it (hysteresis).
        last_good_count_ = report.count;
        has_last_good_ = true;
        ++good_streak_;
        if (good_streak_ >= config_.recovery_streak_frames) stale_streak_ = 0;
    }

    // ---- Health accounting ----
    rc_.frames_total->add(1);
    switch (report.status) {
        case frame_status::ok: rc_.frames_ok->add(1); break;
        case frame_status::degraded: rc_.frames_degraded->add(1); break;
        case frame_status::dropped: rc_.frames_dropped->add(1); break;
    }
    ingest_stats_.add(report.times.ingest_ms);
    clustering_stats_.add(report.times.clustering_ms);
    classification_stats_.add(report.times.classification_ms);
    frame_stats_.add(report.frame_ms);
    rc_.ingest_ms->record(report.times.ingest_ms);
    rc_.clustering_ms->record(report.times.clustering_ms);
    rc_.classification_ms->record(report.times.classification_ms);
    rc_.frame_ms->record(report.frame_ms);

    // The frame span closes last, carrying the terminal status so trace
    // consumers can color ok/degraded/dropped frames without joining on
    // the report stream.
    frame_span.set_code(static_cast<std::uint8_t>(report.status));
    return report;
}

}  // namespace hawc
