#include "runtime/fault_injection.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace hawc {

const char* to_string(fault_kind kind) {
    switch (kind) {
        case fault_kind::beam_dropout: return "beam_dropout";
        case fault_kind::range_jitter: return "range_jitter";
        case fault_kind::non_finite: return "non_finite";
        case fault_kind::truncated_frame: return "truncated_frame";
        case fault_kind::duplicate_points: return "duplicate_points";
    }
    return "unknown";
}

namespace {

point_cloud apply_beam_dropout(const point_cloud& cloud, const fault_injection_config& cfg,
                               rng& random) {
    // Losing channels thins the whole capture; severity varies frame to
    // frame, occasionally wiping out nearly everything.
    const double fraction =
        random.uniform(cfg.dropout_fraction_min, cfg.dropout_fraction_max);
    return cloud.filtered([&](const vec3&) { return !random.chance(fraction); });
}

point_cloud apply_range_jitter(const point_cloud& cloud, const fault_injection_config& cfg,
                               rng& random) {
    // Radial noise along the beam: the sensor sits at the origin, so a
    // range error scales the return along its direction vector.
    point_cloud out;
    out.reserve(cloud.size());
    for (const auto& p : cloud) {
        const double range = p.norm();
        if (range < 1e-9) {
            out.push_back(p);
            continue;
        }
        const double scale = 1.0 + random.normal(0.0, cfg.range_jitter_sigma_m) / range;
        out.push_back(p * scale);
    }
    return out;
}

point_cloud apply_non_finite(const point_cloud& cloud, const fault_injection_config& cfg,
                             rng& random) {
    point_cloud out = cloud;
    constexpr double poisons[] = {std::numeric_limits<double>::quiet_NaN(),
                                  std::numeric_limits<double>::infinity(),
                                  -std::numeric_limits<double>::infinity()};
    for (auto& p : out) {
        if (!random.chance(cfg.non_finite_fraction)) continue;
        const double poison = poisons[random.uniform_index(3)];
        switch (random.uniform_index(3)) {
            case 0: p.x = poison; break;
            case 1: p.y = poison; break;
            default: p.z = poison; break;
        }
    }
    return out;
}

point_cloud apply_truncated_frame(const point_cloud& cloud,
                                  const fault_injection_config& cfg, rng& random) {
    // Partial frame: the tail of the rotation never arrives.
    const auto keep = static_cast<std::size_t>(static_cast<double>(cloud.size()) *
                                               random.uniform(0.0, cfg.truncated_keep_max));
    point_cloud out;
    out.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) out.push_back(cloud[i]);
    return out;
}

point_cloud apply_duplicate_points(const point_cloud& cloud,
                                   const fault_injection_config& cfg, rng& random) {
    if (cloud.empty()) return cloud;
    // Stuck beams re-report a handful of returns over and over.
    point_cloud out = cloud;
    const auto extras = static_cast<std::size_t>(static_cast<double>(cloud.size()) *
                                                 cfg.duplicate_fraction);
    const std::size_t stuck_sources = 1 + random.uniform_index(4);
    std::vector<vec3> sources;
    for (std::size_t i = 0; i < stuck_sources; ++i) {
        sources.push_back(cloud[random.uniform_index(cloud.size())]);
    }
    for (std::size_t i = 0; i < extras; ++i) {
        out.push_back(sources[i % sources.size()]);
    }
    return out;
}

}  // namespace

point_cloud fault_injector::apply(fault_kind kind, const point_cloud& clean, rng& random) {
    ++injected_[static_cast<std::size_t>(kind)];
    switch (kind) {
        case fault_kind::beam_dropout: return apply_beam_dropout(clean, config_, random);
        case fault_kind::range_jitter: return apply_range_jitter(clean, config_, random);
        case fault_kind::non_finite: return apply_non_finite(clean, config_, random);
        case fault_kind::truncated_frame:
            return apply_truncated_frame(clean, config_, random);
        case fault_kind::duplicate_points:
            return apply_duplicate_points(clean, config_, random);
    }
    return clean;
}

point_cloud fault_injector::corrupt(const point_cloud& clean, rng& random) {
    point_cloud out = clean;
    const std::pair<fault_kind, double> schedule[] = {
        {fault_kind::beam_dropout, config_.beam_dropout_prob},
        {fault_kind::range_jitter, config_.range_jitter_prob},
        {fault_kind::non_finite, config_.non_finite_prob},
        {fault_kind::truncated_frame, config_.truncated_frame_prob},
        {fault_kind::duplicate_points, config_.duplicate_points_prob},
    };
    for (const auto& [kind, prob] : schedule) {
        if (prob > 0.0 && random.chance(prob)) out = apply(kind, out, random);
    }
    return out;
}

std::uint64_t fault_injector::total_injected() const {
    return std::accumulate(injected_.begin(), injected_.end(), std::uint64_t{0});
}

bool flaky_classifier::is_human(const point_cloud& cluster, rng& random) const {
    if (chaos_.chance(failure_probability_)) {
        ++faults_;
        throw data_integrity_error{"injected classifier fault"};
    }
    return inner_->is_human(cluster, random);
}

}  // namespace hawc
