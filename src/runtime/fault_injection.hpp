#pragma once

// Sensor fault injection for chaos testing the streaming runtime. Each
// fault mimics a real failure mode of pole-mounted spinning LiDAR:
//   beam_dropout     - channels lost to occlusion, rain or connector wear
//   range_jitter     - radial noise bursts (multipath, retro-reflectors)
//   non_finite       - NaN/Inf returns from saturation or driver bugs
//   truncated_frame  - partial frame (UDP loss mid-rotation)
//   duplicate_points - stuck beams re-reporting the same return
// The injector is deterministic given its rng, and counts what it
// injected so soak tests can correlate faults with supervisor reactions.

#include <array>
#include <cstdint>

#include "classifiers/classifier.hpp"
#include "common/rng.hpp"
#include "pointcloud/point_cloud.hpp"

namespace hawc {

enum class fault_kind {
    beam_dropout,
    range_jitter,
    non_finite,
    truncated_frame,
    duplicate_points,
};

inline constexpr std::size_t fault_kind_count = 5;

const char* to_string(fault_kind kind);

struct fault_injection_config {
    // Per-frame probability that each fault fires (independently).
    double beam_dropout_prob = 0.05;
    double range_jitter_prob = 0.05;
    double non_finite_prob = 0.05;
    double truncated_frame_prob = 0.05;
    double duplicate_points_prob = 0.05;

    // Severity knobs.
    double dropout_fraction_min = 0.5;    // fraction of points lost
    double dropout_fraction_max = 0.99;
    double range_jitter_sigma_m = 2.0;    // radial noise magnitude
    double non_finite_fraction = 0.03;    // points poisoned with NaN/Inf
    double truncated_keep_max = 0.1;      // keep at most this fraction
    double duplicate_fraction = 0.8;      // duplicates appended, rel. to size
};

class fault_injector {
public:
    explicit fault_injector(const fault_injection_config& config = {}) : config_{config} {}

    /// Corrupt one clean capture: every configured fault fires
    /// independently with its probability.
    point_cloud corrupt(const point_cloud& clean, rng& random);

    /// Apply exactly one fault kind (for targeted chaos schedules).
    point_cloud apply(fault_kind kind, const point_cloud& clean, rng& random);

    std::uint64_t injected(fault_kind kind) const {
        return injected_[static_cast<std::size_t>(kind)];
    }
    std::uint64_t total_injected() const;
    void reset_counts() { injected_.fill(0); }

private:
    fault_injection_config config_;
    std::array<std::uint64_t, fault_kind_count> injected_{};
};

/// Chaos wrapper for classifier-level faults: forwards to `inner` but
/// throws data_integrity_error with the given probability, standing in
/// for sporadic dequantization/validation failures. Exercises the
/// supervisor's float-model fallback rung in soak tests.
class flaky_classifier final : public human_classifier {
public:
    flaky_classifier(const human_classifier& inner, double failure_probability,
                     std::uint64_t seed)
        : inner_{&inner}, failure_probability_{failure_probability}, chaos_{seed} {}

    bool is_human(const point_cloud& cluster, rng& random) const override;
    std::string name() const override { return "Flaky[" + inner_->name() + "]"; }
    // Inherits thread_safe() == false: the chaos rng is mutable per-call
    // state, and a shared stream keeps fault schedules reproducible.

    std::uint64_t faults_raised() const { return faults_; }

private:
    const human_classifier* inner_;
    double failure_probability_;
    mutable rng chaos_;
    mutable std::uint64_t faults_ = 0;
};

}  // namespace hawc
