#pragma once

// Per-frame health accounting for the streaming runtime. The supervisor
// classifies every frame as ok / degraded / dropped and records which
// rung of the graceful-degradation ladder fired; the bench harness and
// the resilient_service example print these counters directly.

#include <cstdint>
#include <string>

#include "common/stats.hpp"

namespace hawc {

/// Terminal disposition of one supervised frame. Every frame gets exactly
/// one status, so ok + degraded + dropped always equals total.
enum class frame_status {
    ok,        // full pipeline, no fallback
    degraded,  // a fallback rung fired but a genuine count was produced
    dropped,   // unrecoverable; the count (if any) is a stale carry-forward
};

/// Rungs of the graceful-degradation ladder, mildest first.
enum class fallback_rung {
    fixed_eps,    // adaptive eps degenerate/over budget -> fixed-eps DBSCAN
    float_model,  // quantized classifier faulted -> fp32 model per cluster
    stale_count,  // unrecoverable frame -> bounded carry-forward of last count
};

const char* to_string(frame_status status);
const char* to_string(fallback_rung rung);

/// Aggregate counters across the supervisor's lifetime (or since the last
/// reset). Plain struct so harnesses can diff snapshots.
struct health_counters {
    /// Monotonic restart epoch: bumped every time the supervisor's health
    /// is reset (watchdog restart, operator reset). Snapshots taken around
    /// a restart order by (epoch, frames_total), so a consumer polling a
    /// supervised pole never sees its progress run backwards even though
    /// frames_total itself rolls back to zero.
    std::uint64_t epoch = 0;

    std::uint64_t frames_total = 0;
    std::uint64_t frames_ok = 0;
    std::uint64_t frames_degraded = 0;
    std::uint64_t frames_dropped = 0;

    // Ladder activations.
    std::uint64_t fixed_eps_fallbacks = 0;     // frames clustered at fixed eps
    std::uint64_t float_model_fallbacks = 0;   // per-cluster fp32 rescues
    std::uint64_t stale_counts_served = 0;     // dropped frames answered stale
    std::uint64_t stale_cap_exhausted = 0;     // dropped past the staleness cap

    // Sanitization and watchdog observations.
    std::uint64_t non_finite_points_dropped = 0;
    std::uint64_t duplicate_points_dropped = 0;
    std::uint64_t truncated_frames = 0;            // rejected below min_raw_points
    std::uint64_t classification_truncations = 0;  // cluster loop hit its budget
    std::uint64_t frame_deadline_overruns = 0;

    // Stage latencies over all processed frames.
    running_stats ingest_ms;
    running_stats clustering_ms;
    running_stats classification_ms;
    running_stats frame_ms;

    /// True when every frame carries exactly one status.
    bool accounted() const {
        return frames_ok + frames_degraded + frames_dropped == frames_total;
    }

    /// Multi-line human-readable report.
    std::string summary() const;

    /// Single JSON object (counters as integers, latency stats as nested
    /// objects with count/mean/stddev/min/max). Machine-readable
    /// counterpart of summary(); resilient_service --json emits it.
    std::string to_json() const;
};

/// True when snapshot `later` was taken no earlier than `earlier` on the
/// same supervisor: epoch-major, frames_total-minor. This is the ordering
/// fleet watchdogs and scrapers must use across restarts — comparing
/// frames_total alone goes backwards the moment a restart resets it.
bool progressed(const health_counters& earlier, const health_counters& later);

}  // namespace hawc
