#include "runtime/failure.hpp"

namespace hawc {

const char* to_string(pipeline_stage stage) {
    switch (stage) {
        case pipeline_stage::capture: return "capture";
        case pipeline_stage::ingest: return "ingest";
        case pipeline_stage::clustering: return "clustering";
        case pipeline_stage::classification: return "classification";
        case pipeline_stage::frame: return "frame";
    }
    return "unknown";
}

const char* to_string(failure_kind kind) {
    switch (kind) {
        case failure_kind::non_finite_input: return "non_finite_input";
        case failure_kind::truncated_frame: return "truncated_frame";
        case failure_kind::duplicate_points: return "duplicate_points";
        case failure_kind::implausible_geometry: return "implausible_geometry";
        case failure_kind::degenerate_elbow: return "degenerate_elbow";
        case failure_kind::stage_deadline: return "stage_deadline";
        case failure_kind::classifier_fault: return "classifier_fault";
        case failure_kind::stage_exception: return "stage_exception";
    }
    return "unknown";
}

std::string failure_event::describe() const {
    std::string out = to_string(stage);
    out += ": ";
    out += to_string(kind);
    if (!detail.empty()) {
        out += " (";
        out += detail;
        out += ")";
    }
    return out;
}

}  // namespace hawc
