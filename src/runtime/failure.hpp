#pragma once

// Structured failure taxonomy for the streaming runtime: which pipeline
// stage misbehaved and how. Every degraded or dropped frame carries the
// ordered list of failure events the supervisor observed while walking
// the degradation ladder, so operators can tell a dirty sensor (bursts
// of non_finite_input) from an overloaded node (stage_deadline) without
// reproducing the frame. Exception types live in common/error.hpp
// (timeout_error, data_integrity_error); this header classifies them.

#include <string>
#include <vector>

#include "common/error.hpp"

namespace hawc {

/// The supervised stages of the per-capture pipeline, in order.
enum class pipeline_stage {
    capture,         // raw frame validation (sanitization, size checks)
    ingest,          // ROI crop + ground removal + dedupe
    clustering,      // adaptive-eps selection + DBSCAN
    classification,  // per-cluster human/object decisions
    frame,           // whole-frame concerns (total deadline, unknown throws)
};

/// Why a stage degraded or failed.
enum class failure_kind {
    non_finite_input,      // NaN/Inf coordinates in the raw capture
    truncated_frame,       // far too few raw returns (dropout / partial frame)
    duplicate_points,      // stuck-beam duplicates distorting density
    implausible_geometry,  // returns below the ground plane (range noise burst)
    degenerate_elbow,   // adaptive eps pinned to a clamp bound
    stage_deadline,     // a stage exceeded its watchdog budget
    classifier_fault,   // primary classifier threw / failed validation
    stage_exception,    // any other exception escaping a stage
};

const char* to_string(pipeline_stage stage);
const char* to_string(failure_kind kind);

/// One recorded failure. A frame can accumulate several events while the
/// ladder degrades it; it is only dropped when no rung is left.
struct failure_event {
    pipeline_stage stage = pipeline_stage::frame;
    failure_kind kind = failure_kind::stage_exception;
    std::string detail;

    std::string describe() const;  // "clustering: degenerate_elbow (eps pinned...)"
};

}  // namespace hawc
