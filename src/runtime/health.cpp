#include "runtime/health.hpp"

#include <cstdio>

namespace hawc {

const char* to_string(frame_status status) {
    switch (status) {
        case frame_status::ok: return "ok";
        case frame_status::degraded: return "degraded";
        case frame_status::dropped: return "dropped";
    }
    return "unknown";
}

const char* to_string(fallback_rung rung) {
    switch (rung) {
        case fallback_rung::fixed_eps: return "fixed_eps";
        case fallback_rung::float_model: return "float_model";
        case fallback_rung::stale_count: return "stale_count";
    }
    return "unknown";
}

namespace {

std::string stat_line(const char* label, const running_stats& s) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "  %-16s %8.3f ms  (sd %.3f, max %.3f)\n", label,
                  s.mean(), s.stddev(), s.max());
    return buf;
}

}  // namespace

std::string health_counters::summary() const {
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof buf,
                  "frames     %llu total | %llu ok | %llu degraded | %llu dropped%s\n",
                  static_cast<unsigned long long>(frames_total),
                  static_cast<unsigned long long>(frames_ok),
                  static_cast<unsigned long long>(frames_degraded),
                  static_cast<unsigned long long>(frames_dropped),
                  accounted() ? "" : "  [ACCOUNTING MISMATCH]");
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "fallbacks  fixed-eps %llu | float-model %llu | stale served %llu "
                  "(cap exhausted %llu)\n",
                  static_cast<unsigned long long>(fixed_eps_fallbacks),
                  static_cast<unsigned long long>(float_model_fallbacks),
                  static_cast<unsigned long long>(stale_counts_served),
                  static_cast<unsigned long long>(stale_cap_exhausted));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "sanitize   %llu non-finite pts | %llu duplicate pts | %llu truncated "
                  "frames\n",
                  static_cast<unsigned long long>(non_finite_points_dropped),
                  static_cast<unsigned long long>(duplicate_points_dropped),
                  static_cast<unsigned long long>(truncated_frames));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "watchdog   %llu classification truncations | %llu frame overruns\n",
                  static_cast<unsigned long long>(classification_truncations),
                  static_cast<unsigned long long>(frame_deadline_overruns));
    out += buf;
    out += "latency\n";
    out += stat_line("ingest", ingest_ms);
    out += stat_line("clustering", clustering_ms);
    out += stat_line("classification", classification_ms);
    out += stat_line("frame", frame_ms);
    return out;
}

}  // namespace hawc
