#include "runtime/health.hpp"

#include <cstdio>

namespace hawc {

const char* to_string(frame_status status) {
    switch (status) {
        case frame_status::ok: return "ok";
        case frame_status::degraded: return "degraded";
        case frame_status::dropped: return "dropped";
    }
    return "unknown";
}

const char* to_string(fallback_rung rung) {
    switch (rung) {
        case fallback_rung::fixed_eps: return "fixed_eps";
        case fallback_rung::float_model: return "float_model";
        case fallback_rung::stale_count: return "stale_count";
    }
    return "unknown";
}

namespace {

std::string stat_line(const char* label, const running_stats& s) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "  %-16s %8.3f ms  (sd %.3f, max %.3f)\n", label,
                  s.mean(), s.stddev(), s.max());
    return buf;
}

}  // namespace

namespace {

std::string json_stat(const char* key, const running_stats& s) {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "\"%s\":{\"count\":%llu,\"mean\":%.6f,\"stddev\":%.6f,\"min\":%.6f,"
                  "\"max\":%.6f}",
                  key, static_cast<unsigned long long>(s.count()), s.mean(), s.stddev(),
                  s.count() > 0 ? s.min() : 0.0, s.count() > 0 ? s.max() : 0.0);
    return buf;
}

std::string json_u64(const char* key, std::uint64_t v) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "\"%s\":%llu", key, static_cast<unsigned long long>(v));
    return buf;
}

}  // namespace

bool progressed(const health_counters& earlier, const health_counters& later) {
    if (later.epoch != earlier.epoch) return later.epoch > earlier.epoch;
    return later.frames_total >= earlier.frames_total;
}

std::string health_counters::to_json() const {
    std::string out = "{";
    out += json_u64("epoch", epoch) + ",";
    out += json_u64("frames_total", frames_total) + ",";
    out += json_u64("frames_ok", frames_ok) + ",";
    out += json_u64("frames_degraded", frames_degraded) + ",";
    out += json_u64("frames_dropped", frames_dropped) + ",";
    out += json_u64("fixed_eps_fallbacks", fixed_eps_fallbacks) + ",";
    out += json_u64("float_model_fallbacks", float_model_fallbacks) + ",";
    out += json_u64("stale_counts_served", stale_counts_served) + ",";
    out += json_u64("stale_cap_exhausted", stale_cap_exhausted) + ",";
    out += json_u64("non_finite_points_dropped", non_finite_points_dropped) + ",";
    out += json_u64("duplicate_points_dropped", duplicate_points_dropped) + ",";
    out += json_u64("truncated_frames", truncated_frames) + ",";
    out += json_u64("classification_truncations", classification_truncations) + ",";
    out += json_u64("frame_deadline_overruns", frame_deadline_overruns) + ",";
    out += "\"latency_ms\":{";
    out += json_stat("ingest", ingest_ms) + ",";
    out += json_stat("clustering", clustering_ms) + ",";
    out += json_stat("classification", classification_ms) + ",";
    out += json_stat("frame", frame_ms);
    out += "}}";
    return out;
}

std::string health_counters::summary() const {
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof buf,
                  "frames     %llu total | %llu ok | %llu degraded | %llu dropped%s\n",
                  static_cast<unsigned long long>(frames_total),
                  static_cast<unsigned long long>(frames_ok),
                  static_cast<unsigned long long>(frames_degraded),
                  static_cast<unsigned long long>(frames_dropped),
                  accounted() ? "" : "  [ACCOUNTING MISMATCH]");
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "fallbacks  fixed-eps %llu | float-model %llu | stale served %llu "
                  "(cap exhausted %llu)\n",
                  static_cast<unsigned long long>(fixed_eps_fallbacks),
                  static_cast<unsigned long long>(float_model_fallbacks),
                  static_cast<unsigned long long>(stale_counts_served),
                  static_cast<unsigned long long>(stale_cap_exhausted));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "sanitize   %llu non-finite pts | %llu duplicate pts | %llu truncated "
                  "frames\n",
                  static_cast<unsigned long long>(non_finite_points_dropped),
                  static_cast<unsigned long long>(duplicate_points_dropped),
                  static_cast<unsigned long long>(truncated_frames));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "watchdog   %llu classification truncations | %llu frame overruns\n",
                  static_cast<unsigned long long>(classification_truncations),
                  static_cast<unsigned long long>(frame_deadline_overruns));
    out += buf;
    out += "latency\n";
    out += stat_line("ingest", ingest_ms);
    out += stat_line("clustering", clustering_ms);
    out += stat_line("classification", classification_ms);
    out += stat_line("frame", frame_ms);
    return out;
}

}  // namespace hawc
