#include "pointcloud/kd_tree.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

namespace hawc {

namespace {

double axis_value(const vec3& p, std::uint8_t axis) {
    switch (axis) {
        case 0: return p.x;
        case 1: return p.y;
        default: return p.z;
    }
}

// Max-heap of the best k candidates on a fixed-size inline array — the
// k <= 16 fast path (height_variation and the eps elbow use k = 9). No
// allocation, and small enough to live in registers/L1 during traversal.
class inline_k_heap {
public:
    static constexpr std::size_t capacity = 16;

    explicit inline_k_heap(std::size_t k) : k_{k} {}

    std::size_t size() const { return size_; }
    bool full() const { return size_ == k_; }
    double worst() const { return slots_[0].distance; }

    void consider(std::size_t index, double d_sq) {
        if (size_ < k_) {
            slots_[size_] = {index, d_sq};
            sift_up(size_++);
        } else if (d_sq < slots_[0].distance) {
            slots_[0] = {index, d_sq};
            sift_down();
        }
    }

    // Ascending (distance, index) extraction into `out`.
    void extract_sorted(std::vector<neighbor>& out) {
        out.assign(slots_.begin(), slots_.begin() + size_);
        std::sort(out.begin(), out.end(), [](const neighbor& a, const neighbor& b) {
            if (a.distance != b.distance) return a.distance < b.distance;
            return a.index < b.index;
        });
    }

private:
    void sift_up(std::size_t i) {
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (slots_[parent].distance >= slots_[i].distance) break;
            std::swap(slots_[parent], slots_[i]);
            i = parent;
        }
    }

    void sift_down() {
        std::size_t i = 0;
        for (;;) {
            const std::size_t l = 2 * i + 1;
            const std::size_t r = l + 1;
            std::size_t largest = i;
            if (l < size_ && slots_[l].distance > slots_[largest].distance) largest = l;
            if (r < size_ && slots_[r].distance > slots_[largest].distance) largest = r;
            if (largest == i) break;
            std::swap(slots_[i], slots_[largest]);
            i = largest;
        }
    }

    std::array<neighbor, capacity> slots_{};
    std::size_t k_ = 0;
    std::size_t size_ = 0;
};

// Max-heap over the caller's vector for k > 16. The vector's capacity is
// the only storage, so repeated queries through the same buffer settle
// into an allocation-free steady state too.
class vector_k_heap {
public:
    vector_k_heap(std::size_t k, std::vector<neighbor>& storage) : k_{k}, heap_{storage} {
        heap_.clear();
    }

    std::size_t size() const { return heap_.size(); }
    bool full() const { return heap_.size() == k_; }
    double worst() const { return heap_.front().distance; }

    void consider(std::size_t index, double d_sq) {
        if (heap_.size() < k_) {
            heap_.push_back({index, d_sq});
            std::push_heap(heap_.begin(), heap_.end(), by_distance);
        } else if (d_sq < heap_.front().distance) {
            std::pop_heap(heap_.begin(), heap_.end(), by_distance);
            heap_.back() = {index, d_sq};
            std::push_heap(heap_.begin(), heap_.end(), by_distance);
        }
    }

    void extract_sorted(std::vector<neighbor>& out) {
        // `out` is the heap's own storage; sort it in place.
        std::sort(out.begin(), out.end(), [](const neighbor& a, const neighbor& b) {
            if (a.distance != b.distance) return a.distance < b.distance;
            return a.index < b.index;
        });
    }

private:
    static bool by_distance(const neighbor& a, const neighbor& b) {
        return a.distance < b.distance;
    }

    std::size_t k_;
    std::vector<neighbor>& heap_;
};

}  // namespace

kd_tree::kd_tree(const point_cloud& cloud) {
    const auto n = static_cast<std::int32_t>(cloud.size());
    points_.reserve(cloud.size());
    for (const auto& p : cloud) points_.push_back(p);
    order_.resize(cloud.size());
    std::iota(order_.begin(), order_.end(), 0);
    if (n > 0) {
        nodes_.reserve(static_cast<std::size_t>(2 * n / leaf_size + 4));
        root_ = build(0, n, 0);
    }
}

std::int32_t kd_tree::build(std::int32_t begin, std::int32_t end, int depth) {
    node nd;
    if (end - begin <= leaf_size) {
        nd.leaf = true;
        nd.begin = begin;
        nd.end = end;
        nodes_.push_back(nd);
        return static_cast<std::int32_t>(nodes_.size() - 1);
    }

    // Pick the widest-spread axis for better balance on anisotropic data
    // (LiDAR walkway scenes are much longer in x than tall in z).
    vec3 lo = points_[static_cast<std::size_t>(order_[begin])];
    vec3 hi = lo;
    for (std::int32_t i = begin + 1; i < end; ++i) {
        const auto& p = points_[static_cast<std::size_t>(order_[i])];
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }
    const vec3 spread = hi - lo;
    std::uint8_t axis = 0;
    if (spread.y > spread.x) axis = 1;
    if (spread.z > axis_value(spread, axis)) axis = 2;

    const std::int32_t mid = begin + (end - begin) / 2;
    std::nth_element(order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
                     [&](std::int32_t a, std::int32_t b) {
                         return axis_value(points_[static_cast<std::size_t>(a)], axis) <
                                axis_value(points_[static_cast<std::size_t>(b)], axis);
                     });

    nd.axis = axis;
    nd.split = axis_value(points_[static_cast<std::size_t>(order_[mid])], axis);
    nodes_.push_back(nd);
    const auto index = static_cast<std::int32_t>(nodes_.size() - 1);
    const auto left = build(begin, mid, depth + 1);
    const auto right = build(mid, end, depth + 1);
    nodes_[static_cast<std::size_t>(index)].left = left;
    nodes_[static_cast<std::size_t>(index)].right = right;
    return index;
}

template <typename Heap>
void kd_tree::nearest_with_heap(const vec3& query, std::size_t /*k*/, Heap& heap) const {
    // Iterative depth-first traversal with pruning against the current
    // k-th best distance. The exact-median build halves each range, so
    // the tree height (and with it the pending-node stack) is bounded by
    // log2(2^31 / leaf_size) + 1 < 32 — a fixed array is enough and the
    // traversal never touches the allocator.
    std::array<std::int32_t, 64> stack;
    std::size_t depth = 0;
    stack[depth++] = root_;
    while (depth > 0) {
        const auto ni = stack[--depth];
        if (ni < 0) continue;
        const node& nd = nodes_[static_cast<std::size_t>(ni)];
        if (nd.leaf) {
            for (std::int32_t i = nd.begin; i < nd.end; ++i) {
                const auto cloud_index = order_[static_cast<std::size_t>(i)];
                const double d_sq =
                    points_[static_cast<std::size_t>(cloud_index)].distance_sq_to(query);
                heap.consider(static_cast<std::size_t>(cloud_index), d_sq);
            }
            continue;
        }
        const double delta = axis_value(query, nd.axis) - nd.split;
        const auto near_child = delta <= 0.0 ? nd.left : nd.right;
        const auto far_child = delta <= 0.0 ? nd.right : nd.left;
        // Visit far side only if the splitting plane is closer than the
        // current worst retained distance (or we have fewer than k yet).
        if (!heap.full() || delta * delta <= heap.worst()) stack[depth++] = far_child;
        stack[depth++] = near_child;
    }
}

void kd_tree::nearest_into(const vec3& query, std::size_t k, std::vector<neighbor>& out) const {
    out.clear();
    if (k == 0 || points_.empty()) return;
    k = std::min(k, points_.size());

    if (k <= inline_k_heap::capacity) {
        inline_k_heap heap{k};
        nearest_with_heap(query, k, heap);
        heap.extract_sorted(out);
    } else {
        vector_k_heap heap{k, out};
        nearest_with_heap(query, k, heap);
        heap.extract_sorted(out);
    }
    for (auto& nb : out) nb.distance = std::sqrt(nb.distance);
}

std::vector<neighbor> kd_tree::nearest(const vec3& query, std::size_t k) const {
    std::vector<neighbor> result;
    nearest_into(query, k, result);
    return result;
}

template <typename Visitor>
void kd_tree::visit_radius(std::int32_t node_index, const vec3& query, double radius_sq,
                           Visitor&& visit) const {
    if (node_index < 0) return;
    const node& nd = nodes_[static_cast<std::size_t>(node_index)];
    if (nd.leaf) {
        for (std::int32_t i = nd.begin; i < nd.end; ++i) {
            const auto cloud_index = order_[static_cast<std::size_t>(i)];
            if (points_[static_cast<std::size_t>(cloud_index)].distance_sq_to(query) <= radius_sq) {
                visit(static_cast<std::size_t>(cloud_index));
            }
        }
        return;
    }
    const double delta = axis_value(query, nd.axis) - nd.split;
    const auto near_child = delta <= 0.0 ? nd.left : nd.right;
    const auto far_child = delta <= 0.0 ? nd.right : nd.left;
    visit_radius(near_child, query, radius_sq, visit);
    if (delta * delta <= radius_sq) visit_radius(far_child, query, radius_sq, visit);
}

void kd_tree::radius_search_into(const vec3& query, double radius,
                                 std::vector<std::size_t>& found) const {
    found.clear();
    if (points_.empty() || radius < 0.0) return;
    visit_radius(root_, query, radius * radius, [&](std::size_t i) { found.push_back(i); });
}

std::vector<std::size_t> kd_tree::radius_search(const vec3& query, double radius) const {
    std::vector<std::size_t> found;
    radius_search_into(query, radius, found);
    return found;
}

std::size_t kd_tree::count_within(const vec3& query, double radius) const {
    if (points_.empty() || radius < 0.0) return 0;
    std::size_t count = 0;
    visit_radius(root_, query, radius * radius, [&](std::size_t) { ++count; });
    return count;
}

}  // namespace hawc
