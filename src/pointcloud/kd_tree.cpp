#include "pointcloud/kd_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace hawc {

namespace {

double axis_value(const vec3& p, std::uint8_t axis) {
    switch (axis) {
        case 0: return p.x;
        case 1: return p.y;
        default: return p.z;
    }
}

}  // namespace

kd_tree::kd_tree(const point_cloud& cloud) {
    const auto n = static_cast<std::int32_t>(cloud.size());
    points_.reserve(cloud.size());
    for (const auto& p : cloud) points_.push_back(p);
    order_.resize(cloud.size());
    std::iota(order_.begin(), order_.end(), 0);
    if (n > 0) {
        nodes_.reserve(static_cast<std::size_t>(2 * n / leaf_size + 4));
        root_ = build(0, n, 0);
    }
}

std::int32_t kd_tree::build(std::int32_t begin, std::int32_t end, int depth) {
    node nd;
    if (end - begin <= leaf_size) {
        nd.leaf = true;
        nd.begin = begin;
        nd.end = end;
        nodes_.push_back(nd);
        return static_cast<std::int32_t>(nodes_.size() - 1);
    }

    // Pick the widest-spread axis for better balance on anisotropic data
    // (LiDAR walkway scenes are much longer in x than tall in z).
    vec3 lo = points_[static_cast<std::size_t>(order_[begin])];
    vec3 hi = lo;
    for (std::int32_t i = begin + 1; i < end; ++i) {
        const auto& p = points_[static_cast<std::size_t>(order_[i])];
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }
    const vec3 spread = hi - lo;
    std::uint8_t axis = 0;
    if (spread.y > spread.x) axis = 1;
    if (spread.z > axis_value(spread, axis)) axis = 2;

    const std::int32_t mid = begin + (end - begin) / 2;
    std::nth_element(order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
                     [&](std::int32_t a, std::int32_t b) {
                         return axis_value(points_[static_cast<std::size_t>(a)], axis) <
                                axis_value(points_[static_cast<std::size_t>(b)], axis);
                     });

    nd.axis = axis;
    nd.split = axis_value(points_[static_cast<std::size_t>(order_[mid])], axis);
    nodes_.push_back(nd);
    const auto index = static_cast<std::int32_t>(nodes_.size() - 1);
    const auto left = build(begin, mid, depth + 1);
    const auto right = build(mid, end, depth + 1);
    nodes_[static_cast<std::size_t>(index)].left = left;
    nodes_[static_cast<std::size_t>(index)].right = right;
    return index;
}

std::vector<neighbor> kd_tree::nearest(const vec3& query, std::size_t k) const {
    std::vector<neighbor> result;
    if (k == 0 || points_.empty()) return result;
    k = std::min(k, points_.size());

    // Max-heap of the best k candidates seen so far, keyed by distance.
    auto cmp = [](const neighbor& a, const neighbor& b) { return a.distance < b.distance; };
    std::priority_queue<neighbor, std::vector<neighbor>, decltype(cmp)> heap{cmp};

    auto consider = [&](std::int32_t tree_pos) {
        const auto cloud_index = order_[static_cast<std::size_t>(tree_pos)];
        const double d_sq = points_[static_cast<std::size_t>(cloud_index)].distance_sq_to(query);
        if (heap.size() < k) {
            heap.push({static_cast<std::size_t>(cloud_index), d_sq});
        } else if (d_sq < heap.top().distance) {
            heap.pop();
            heap.push({static_cast<std::size_t>(cloud_index), d_sq});
        }
    };

    // Iterative depth-first traversal with pruning against the current
    // k-th best distance.
    std::vector<std::int32_t> stack;
    stack.push_back(root_);
    while (!stack.empty()) {
        const auto ni = stack.back();
        stack.pop_back();
        if (ni < 0) continue;
        const node& nd = nodes_[static_cast<std::size_t>(ni)];
        if (nd.leaf) {
            for (std::int32_t i = nd.begin; i < nd.end; ++i) consider(i);
            continue;
        }
        const double delta = axis_value(query, nd.axis) - nd.split;
        const auto near_child = delta <= 0.0 ? nd.left : nd.right;
        const auto far_child = delta <= 0.0 ? nd.right : nd.left;
        // Visit far side only if the splitting plane is closer than the
        // current worst retained distance (or we have fewer than k yet).
        if (heap.size() < k || delta * delta <= heap.top().distance) stack.push_back(far_child);
        stack.push_back(near_child);
    }

    result.resize(heap.size());
    for (auto it = result.rbegin(); it != result.rend(); ++it) {
        *it = heap.top();
        heap.pop();
    }
    for (auto& nb : result) nb.distance = std::sqrt(nb.distance);
    return result;
}

template <typename Visitor>
void kd_tree::visit_radius(std::int32_t node_index, const vec3& query, double radius_sq,
                           Visitor&& visit) const {
    if (node_index < 0) return;
    const node& nd = nodes_[static_cast<std::size_t>(node_index)];
    if (nd.leaf) {
        for (std::int32_t i = nd.begin; i < nd.end; ++i) {
            const auto cloud_index = order_[static_cast<std::size_t>(i)];
            if (points_[static_cast<std::size_t>(cloud_index)].distance_sq_to(query) <= radius_sq) {
                visit(static_cast<std::size_t>(cloud_index));
            }
        }
        return;
    }
    const double delta = axis_value(query, nd.axis) - nd.split;
    const auto near_child = delta <= 0.0 ? nd.left : nd.right;
    const auto far_child = delta <= 0.0 ? nd.right : nd.left;
    visit_radius(near_child, query, radius_sq, visit);
    if (delta * delta <= radius_sq) visit_radius(far_child, query, radius_sq, visit);
}

std::vector<std::size_t> kd_tree::radius_search(const vec3& query, double radius) const {
    std::vector<std::size_t> found;
    if (points_.empty() || radius < 0.0) return found;
    visit_radius(root_, query, radius * radius, [&](std::size_t i) { found.push_back(i); });
    return found;
}

std::size_t kd_tree::count_within(const vec3& query, double radius) const {
    if (points_.empty() || radius < 0.0) return 0;
    std::size_t count = 0;
    visit_radius(root_, query, radius * radius, [&](std::size_t) { ++count; });
    return count;
}

}  // namespace hawc
