#pragma once

// The central data type of the framework: an unordered set of 3D points
// as produced by one LiDAR capture (or one cluster of one).

#include <cstddef>
#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace hawc {

/// Value-semantic 3D point cloud. Points are stored contiguously; the
/// container deliberately mirrors std::vector's interface for the common
/// operations and adds geometric queries used across the pipeline.
class point_cloud {
public:
    point_cloud() = default;
    explicit point_cloud(std::vector<vec3> points) : points_{std::move(points)} {}

    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }
    void reserve(std::size_t n) { points_.reserve(n); }
    void clear() { points_.clear(); }

    void push_back(const vec3& p) { points_.push_back(p); }
    void append(const point_cloud& other) {
        points_.insert(points_.end(), other.points_.begin(), other.points_.end());
    }

    const vec3& operator[](std::size_t i) const { return points_[i]; }
    vec3& operator[](std::size_t i) { return points_[i]; }

    auto begin() const { return points_.begin(); }
    auto end() const { return points_.end(); }
    auto begin() { return points_.begin(); }
    auto end() { return points_.end(); }

    std::span<const vec3> points() const { return points_; }
    std::vector<vec3>& mutable_points() { return points_; }

    /// Arithmetic mean of all points; zero vector for an empty cloud.
    vec3 centroid() const;

    /// Tight axis-aligned bounds (empty box for an empty cloud).
    aabb bounds() const;

    /// New cloud containing only points for which pred(p) is true.
    template <typename Pred>
    point_cloud filtered(Pred&& pred) const {
        point_cloud out;
        out.reserve(points_.size());
        for (const auto& p : points_) {
            if (pred(p)) out.push_back(p);
        }
        return out;
    }

    /// New cloud translated by `offset`.
    point_cloud translated(const vec3& offset) const;

    /// New cloud rotated by `angle` radians around the vertical axis
    /// through `center` (z unchanged). Used for yaw augmentation.
    point_cloud rotated_z(const vec3& center, double angle) const;

    /// Cloud built from the points at the given indices.
    point_cloud subset(std::span<const std::size_t> indices) const;

    bool operator==(const point_cloud&) const = default;

private:
    std::vector<vec3> points_;
};

}  // namespace hawc
