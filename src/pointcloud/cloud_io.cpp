#include "pointcloud/cloud_io.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace hawc {

void write_xyz(std::ostream& out, const point_cloud& cloud) {
    out.precision(6);
    for (const auto& p : cloud) out << p.x << ' ' << p.y << ' ' << p.z << '\n';
}

void write_xyz_file(const std::filesystem::path& path, const point_cloud& cloud) {
    std::ofstream out{path};
    if (!out) throw io_error{"cannot open for writing: " + path.string()};
    write_xyz(out, cloud);
    if (!out) throw io_error{"write failed: " + path.string()};
}

point_cloud read_xyz(std::istream& in) {
    point_cloud cloud;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream fields{line};
        vec3 p;
        if (!(fields >> p.x >> p.y >> p.z)) {
            throw io_error{"malformed XYZ line " + std::to_string(line_number) + ": " + line};
        }
        cloud.push_back(p);
    }
    return cloud;
}

point_cloud read_xyz_file(const std::filesystem::path& path) {
    std::ifstream in{path};
    if (!in) throw io_error{"cannot open for reading: " + path.string()};
    return read_xyz(in);
}

}  // namespace hawc
