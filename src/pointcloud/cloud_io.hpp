#pragma once

// Plain-text XYZ point cloud serialization: one "x y z" line per point.
// Used to persist generated datasets and to inspect captures offline.

#include <filesystem>
#include <iosfwd>

#include "pointcloud/point_cloud.hpp"

namespace hawc {

/// Write one point per line ("x y z", 6 significant digits).
void write_xyz(std::ostream& out, const point_cloud& cloud);
void write_xyz_file(const std::filesystem::path& path, const point_cloud& cloud);

/// Parse an XYZ stream; blank lines and '#' comment lines are skipped.
/// Throws io_error on malformed content.
point_cloud read_xyz(std::istream& in);
point_cloud read_xyz_file(const std::filesystem::path& path);

}  // namespace hawc
