#include "pointcloud/point_cloud.hpp"

#include <cmath>

namespace hawc {

vec3 point_cloud::centroid() const {
    if (points_.empty()) return {};
    vec3 sum;
    for (const auto& p : points_) sum += p;
    return sum / static_cast<double>(points_.size());
}

aabb point_cloud::bounds() const {
    aabb box;
    for (const auto& p : points_) box.expand(p);
    return box;
}

point_cloud point_cloud::translated(const vec3& offset) const {
    point_cloud out;
    out.reserve(points_.size());
    for (const auto& p : points_) out.push_back(p + offset);
    return out;
}

point_cloud point_cloud::rotated_z(const vec3& center, double angle) const {
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    point_cloud out;
    out.reserve(points_.size());
    for (const auto& p : points_) {
        const double dx = p.x - center.x;
        const double dy = p.y - center.y;
        out.push_back({center.x + c * dx - s * dy, center.y + s * dx + c * dy, p.z});
    }
    return out;
}

point_cloud point_cloud::subset(std::span<const std::size_t> indices) const {
    point_cloud out;
    out.reserve(indices.size());
    for (auto i : indices) out.push_back(points_[i]);
    return out;
}

}  // namespace hawc
