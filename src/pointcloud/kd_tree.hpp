#pragma once

// Static KD-tree over a point cloud. Supports the two queries the paper's
// pipeline needs: k-nearest-neighbour search (adaptive-eps selection and
// height-aware projection) and fixed-radius search (DBSCAN region queries).
//
// The *_into overloads write into caller-owned buffers and perform no
// heap allocation per query (beyond growing the caller's buffer towards
// its steady-state capacity), so tight per-point loops — DBSCAN phase 1,
// the HAP height-variation sigma pass, the k-NN elbow curve — can run
// millions of queries without touching the allocator. Queries are const
// and touch no mutable state, so any number of threads may query one
// tree concurrently.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pointcloud/point_cloud.hpp"

namespace hawc {

/// Result of a nearest-neighbour query: point index plus distance.
struct neighbor {
    std::size_t index = 0;
    double distance = 0.0;
};

/// Balanced KD-tree built once over an immutable cloud. The tree stores
/// indices into the cloud passed at construction; the caller must keep
/// that cloud alive and unmodified for the tree's lifetime.
class kd_tree {
public:
    explicit kd_tree(const point_cloud& cloud);

    std::size_t size() const { return points_.size(); }

    /// The k nearest neighbours of `query`, sorted by ascending distance.
    /// Includes the query point itself if it is a member of the cloud.
    /// Returns fewer than k results when the cloud is smaller than k.
    std::vector<neighbor> nearest(const vec3& query, std::size_t k) const;

    /// Allocation-free k-NN: `out` is cleared and filled with the same
    /// results nearest() returns. Reuse `out` across queries; after the
    /// first few queries its capacity plateaus and queries stop
    /// allocating. k <= 16 additionally runs on a fixed-size inline heap.
    void nearest_into(const vec3& query, std::size_t k, std::vector<neighbor>& out) const;

    /// Indices of all points within `radius` (inclusive) of `query`.
    std::vector<std::size_t> radius_search(const vec3& query, double radius) const;

    /// Allocation-free radius query: `found` is cleared and filled with
    /// the indices radius_search() returns (same order). Reuse `found`
    /// across queries to amortise its capacity.
    void radius_search_into(const vec3& query, double radius,
                            std::vector<std::size_t>& found) const;

    /// Number of points within `radius` of `query` (no allocation beyond
    /// the recursion stack); used by DBSCAN core-point tests.
    std::size_t count_within(const vec3& query, double radius) const;

private:
    struct node {
        std::int32_t left = -1;
        std::int32_t right = -1;
        std::int32_t begin = 0;   // leaf: range into order_
        std::int32_t end = 0;
        std::uint8_t axis = 0;
        double split = 0.0;
        bool leaf = false;
    };

    std::int32_t build(std::int32_t begin, std::int32_t end, int depth);

    template <typename Visitor>
    void visit_radius(std::int32_t node_index, const vec3& query, double radius_sq,
                      Visitor&& visit) const;

    template <typename Heap>
    void nearest_with_heap(const vec3& query, std::size_t k, Heap& heap) const;

    static constexpr std::int32_t leaf_size = 16;

    std::vector<vec3> points_;        // copy for cache-friendly traversal
    std::vector<std::int32_t> order_; // permutation: tree position -> cloud index
    std::vector<node> nodes_;
    std::int32_t root_ = -1;
};

}  // namespace hawc
