#pragma once

// Post-training quantization: converts a trained fp32 sequential model
// into a quantized_model. Mirrors the TFLite converter flow the paper
// uses: a calibration dataset (the paper uses 100 random training
// samples) determines activation ranges; batch-norm folds into the
// preceding conv/dense; ReLU fuses into the requantization clamp.

#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "quant/q_model.hpp"

namespace hawc {

struct quantize_config {
    std::size_t max_calibration_samples = 100;
    std::size_t calibration_batch = 16;
};

/// Quantize `model` using activation ranges observed on `calibration`
/// (batch-1 tensors). Throws invalid_argument_error if the architecture
/// contains a layer the int8 backend does not support.
quantized_model quantize_model(sequential& model, const std::vector<tensor>& calibration,
                               const quantize_config& config = {});

/// Table-I-style metrics of a quantized classifier.
eval_metrics evaluate_quantized(const quantized_model& model, const labelled_dataset& data,
                                std::size_t batch_size = 64);

}  // namespace hawc
