#include "quant/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/batch_norm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"

namespace hawc {

namespace {

/// Symmetric per-output-channel weight quantization. `channel_stride`
/// is the distance between consecutive output-channel entries (weights
/// are stored with Cout fastest for both conv and dense).
void quantize_weights(const tensor& weights, std::size_t out_channels,
                      std::vector<std::int8_t>& q_weights, std::vector<float>& scales) {
    const std::size_t rows = weights.size() / out_channels;
    scales.assign(out_channels, 1e-8f);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t oc = 0; oc < out_channels; ++oc) {
            scales[oc] = std::max(scales[oc], std::abs(weights[r * out_channels + oc]));
        }
    }
    for (auto& s : scales) s /= 127.0f;
    q_weights.resize(weights.size());
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t oc = 0; oc < out_channels; ++oc) {
            const float q = std::round(weights[r * out_channels + oc] / scales[oc]);
            q_weights[r * out_channels + oc] =
                static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
        }
    }
}

/// Folded (weight-multiplier, bias) from an optional batch norm.
struct bn_fold {
    std::vector<float> weight_mul;  // per output channel
    std::vector<float> bias_add;    // per output channel (applied after mul)
};

bn_fold fold_batch_norm(const batch_norm* bn, std::size_t channels) {
    bn_fold fold;
    fold.weight_mul.assign(channels, 1.0f);
    fold.bias_add.assign(channels, 0.0f);
    if (bn == nullptr) return fold;
    HAWC_REQUIRE(bn->channels() == channels, "batch norm width mismatch while folding");
    for (std::size_t c = 0; c < channels; ++c) {
        const float inv_std = 1.0f / std::sqrt(bn->running_var()[c] + 1e-5f);
        fold.weight_mul[c] = bn->gamma().value[c] * inv_std;
        fold.bias_add[c] = bn->beta().value[c] - bn->running_mean()[c] * fold.weight_mul[c];
    }
    return fold;
}

tensor apply_fold_conv(const conv2d& conv, const bn_fold& fold) {
    tensor folded = conv.weights().value;
    const std::size_t out_channels = conv.out_channels();
    const std::size_t rows = folded.size() / out_channels;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t oc = 0; oc < out_channels; ++oc) {
            folded[r * out_channels + oc] *= fold.weight_mul[oc];
        }
    }
    return folded;
}

}  // namespace

quantized_model quantize_model(sequential& model, const std::vector<tensor>& calibration,
                               const quantize_config& config) {
    HAWC_REQUIRE(!calibration.empty(), "calibration set must be non-empty");

    // --- Pass 1: observe activation ranges layer by layer. ---
    const std::size_t samples =
        std::min(calibration.size(), config.max_calibration_samples);
    range_observer input_observer;
    std::vector<range_observer> observers(model.layer_count());

    for (std::size_t begin = 0; begin < samples; begin += config.calibration_batch) {
        const std::size_t end = std::min(begin + config.calibration_batch, samples);
        std::vector<tensor> chunk(calibration.begin() + static_cast<std::ptrdiff_t>(begin),
                                  calibration.begin() + static_cast<std::ptrdiff_t>(end));
        tensor x = tensor::stack(chunk);
        input_observer.observe(x);
        for (std::size_t li = 0; li < model.layer_count(); ++li) {
            x = model.layer_at(li).forward(x, /*training=*/false);
            observers[li].observe(x);
        }
    }

    // --- Pass 2: build quantized ops with BN folding and ReLU fusion. ---
    quantized_model q;
    q.set_input_params(input_observer.params());
    quant_params current = q.input_params();

    std::size_t li = 0;
    while (li < model.layer_count()) {
        layer& l = model.layer_at(li);

        if (auto* conv = dynamic_cast<conv2d*>(&l)) {
            std::size_t group_end = li;
            const batch_norm* bn = nullptr;
            bool relu_fused = false;
            if (group_end + 1 < model.layer_count()) {
                bn = dynamic_cast<batch_norm*>(&model.layer_at(group_end + 1));
                if (bn != nullptr) ++group_end;
            }
            if (group_end + 1 < model.layer_count() &&
                dynamic_cast<relu*>(&model.layer_at(group_end + 1)) != nullptr) {
                relu_fused = true;
                ++group_end;
            }

            const bn_fold fold = fold_batch_norm(bn, conv->out_channels());
            const tensor folded = apply_fold_conv(*conv, fold);

            q_conv_op op;
            op.kernel = conv->kernel();
            op.in_channels = conv->in_channels();
            op.out_channels = conv->out_channels();
            op.pad = conv->pad() == padding::same ? conv->kernel() / 2 : 0;
            quantize_weights(folded, op.out_channels, op.weights, op.weight_scales);
            op.bias.resize(op.out_channels);
            for (std::size_t oc = 0; oc < op.out_channels; ++oc) {
                op.bias[oc] =
                    conv->bias().value[oc] * fold.weight_mul[oc] + fold.bias_add[oc];
            }
            op.in_q = current;
            op.out_q = observers[group_end].params();
            op.fused_relu = relu_fused;
            current = op.out_q;
            q.add_op(std::move(op));
            li = group_end + 1;
            continue;
        }

        if (auto* fc = dynamic_cast<dense*>(&l)) {
            std::size_t group_end = li;
            const batch_norm* bn = nullptr;
            bool relu_fused = false;
            if (group_end + 1 < model.layer_count()) {
                bn = dynamic_cast<batch_norm*>(&model.layer_at(group_end + 1));
                if (bn != nullptr) ++group_end;
            }
            if (group_end + 1 < model.layer_count() &&
                dynamic_cast<relu*>(&model.layer_at(group_end + 1)) != nullptr) {
                relu_fused = true;
                ++group_end;
            }

            const bn_fold fold = fold_batch_norm(bn, fc->out_features());
            tensor folded = fc->weights().value;
            for (std::size_t i = 0; i < fc->in_features(); ++i) {
                for (std::size_t o = 0; o < fc->out_features(); ++o) {
                    folded[i * fc->out_features() + o] *= fold.weight_mul[o];
                }
            }

            q_dense_op op;
            op.in_features = fc->in_features();
            op.out_features = fc->out_features();
            quantize_weights(folded, op.out_features, op.weights, op.weight_scales);
            op.bias.resize(op.out_features);
            for (std::size_t o = 0; o < op.out_features; ++o) {
                op.bias[o] = fc->bias().value[o] * fold.weight_mul[o] + fold.bias_add[o];
            }
            op.in_q = current;
            op.out_q = observers[group_end].params();
            op.fused_relu = relu_fused;
            current = op.out_q;
            q.add_op(std::move(op));
            li = group_end + 1;
            continue;
        }

        if (auto* pool = dynamic_cast<max_pool2d*>(&l)) {
            q.add_op(q_pool_op{pool->window()});
            ++li;
            continue;
        }

        if (dynamic_cast<global_max_pool*>(&l) != nullptr) {
            q.add_op(q_global_pool_op{});
            ++li;
            continue;
        }

        if (dynamic_cast<flatten*>(&l) != nullptr) {
            q.add_op(q_flatten_op{});
            ++li;
            continue;
        }

        // Standalone ReLU (not preceded by conv/dense): clamp only. Fold
        // into the running params by observing that requantization with
        // the next op's in_q handles it; reject other layers.
        throw invalid_argument_error{"unsupported layer for int8 conversion: " + l.info().name};
    }
    return q;
}

eval_metrics evaluate_quantized(const quantized_model& model, const labelled_dataset& data,
                                std::size_t batch_size) {
    HAWC_REQUIRE(data.size() > 0, "cannot evaluate on an empty dataset");
    eval_metrics m;
    for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
        const std::size_t end = std::min(begin + batch_size, data.size());
        std::vector<tensor> chunk(data.samples.begin() + static_cast<std::ptrdiff_t>(begin),
                                  data.samples.begin() + static_cast<std::ptrdiff_t>(end));
        const tensor logits = model.forward(tensor::stack(chunk));
        for (std::size_t n = 0; n < logits.dim(0); ++n) {
            std::size_t argmax = 0;
            for (std::size_t k = 1; k < logits.dim(1); ++k) {
                if (logits.at(n, k) > logits.at(n, argmax)) argmax = k;
            }
            const bool predicted_positive = argmax == 1;
            const bool actually_positive = data.labels[begin + n] == 1;
            if (predicted_positive && actually_positive) ++m.true_positive;
            if (predicted_positive && !actually_positive) ++m.false_positive;
            if (!predicted_positive && actually_positive) ++m.false_negative;
            if (!predicted_positive && !actually_positive) ++m.true_negative;
        }
    }
    const double total = static_cast<double>(data.size());
    m.accuracy = static_cast<double>(m.true_positive + m.true_negative) / total;
    const double tp = static_cast<double>(m.true_positive);
    const double fp = static_cast<double>(m.false_positive);
    const double fn = static_cast<double>(m.false_negative);
    m.precision = tp + fp > 0.0 ? tp / (tp + fp) : 0.0;
    m.recall = tp + fn > 0.0 ? tp / (tp + fn) : 0.0;
    m.f1 = m.precision + m.recall > 0.0 ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
                                        : 0.0;
    return m;
}

}  // namespace hawc
