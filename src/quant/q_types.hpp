#pragma once

// Core quantization types: affine (scale, zero-point) parameters and the
// int8 tensor, following the TFLite post-training quantization scheme the
// paper applies (int8 asymmetric activations, symmetric per-channel
// weights, int32 accumulators).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace hawc {

/// Saturating float -> int8 conversion, the single rounding point of the
/// whole quantization stack (quantize_tensor, the int32-accumulator
/// requantize in q_model, calibration round trips). The contract, pinned
/// by tests/test_quant.cpp:
///   - rounding is half-away-from-zero (std::round): 0.5 -> 1, -0.5 -> -1;
///   - values outside [-128, 127] saturate to the nearest endpoint, so the
///     int8 cast is always in range (never implementation-defined);
///   - the caller guarantees `q` is finite (quant_params::quantize screens
///     NaN/Inf first — a NaN through std::clamp would be unordered and the
///     int8 cast of it undefined behaviour).
inline std::int8_t saturate_to_int8(float q) {
    const float rounded = std::round(q);
    return static_cast<std::int8_t>(std::clamp(rounded, -128.0f, 127.0f));
}

/// Affine quantization: real = scale * (q - zero_point).
struct quant_params {
    float scale = 1.0f;
    std::int32_t zero_point = 0;

    /// Derive parameters covering [lo, hi] with int8 range [-128, 127].
    static quant_params from_range(float lo, float hi);

    /// Inline (it sits under every int8 activation element): non-finite
    /// inputs must map deterministically — NaN through std::clamp is
    /// unordered (both comparisons false) and casting the resulting NaN
    /// to int8 is undefined behaviour. NaN carries no magnitude, so it
    /// maps to the zero code; infinities saturate like any out-of-range
    /// value. The kernel layer's fused requantize tiers replicate this
    /// exact contract (nn/kernels/kernels.hpp; nn cannot link against
    /// quant) — tests/test_kernels.cpp pins them together.
    std::int8_t quantize(float real) const {
        if (!std::isfinite(real)) {
            if (std::isnan(real)) {
                return static_cast<std::int8_t>(std::clamp(zero_point, -128, 127));
            }
            return real > 0.0f ? std::int8_t{127} : std::int8_t{-128};
        }
        // real / scale is finite (scale >= span/255 > 0 from from_range)
        // and zero_point is already clamped to int8 range, so the sum
        // stays finite; saturate_to_int8 owns rounding + saturation.
        return saturate_to_int8(real / scale + static_cast<float>(zero_point));
    }
    float dequantize(std::int8_t q) const { return scale * (static_cast<float>(q) - static_cast<float>(zero_point)); }
};

/// Dense int8 tensor with a single (per-tensor) quantization parameter.
struct q_tensor {
    std::vector<std::size_t> shape;
    std::vector<std::int8_t> data;
    quant_params params;

    std::size_t size() const { return data.size(); }
};

/// Quantize a float tensor with the given parameters.
q_tensor quantize_tensor(const tensor& real, const quant_params& params);

/// Dequantize back to float (for the final logits).
tensor dequantize_tensor(const q_tensor& quantized);

/// Track min/max over observed activations (per-tensor calibration).
/// Non-finite values are skipped: a single NaN/Inf in a calibration
/// tensor must not poison the derived scale/zero_point.
struct range_observer {
    float lo = 0.0f;
    float hi = 0.0f;
    bool seen = false;

    void observe(const tensor& t);
    quant_params params() const;
};

}  // namespace hawc
