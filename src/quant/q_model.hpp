#pragma once

// Quantized model representation and int8 inference path. Ops are built
// from a trained fp32 sequential by the calibrator (calibrate.hpp):
// batch-norm folds into the preceding conv/dense, ReLU fuses into the
// output clamp, weights are symmetric per-output-channel int8, and every
// activation tensor carries per-tensor affine parameters.

#include <variant>

#include "nn/kernels/kernels.hpp"
#include "nn/layer.hpp"
#include "quant/q_types.hpp"

namespace hawc {

/// Quantized convolution (stride 1). Weight layout (k,k,Cin,Cout).
struct q_conv_op {
    std::size_t kernel = 3;
    std::size_t in_channels = 0;
    std::size_t out_channels = 0;
    std::size_t pad = 0;
    std::vector<std::int8_t> weights;
    std::vector<float> weight_scales;  // per output channel
    std::vector<float> bias;           // real-valued, folded
    quant_params in_q;
    quant_params out_q;
    bool fused_relu = false;
    /// Derived, not serialized: the kernel-layer packed-B layout, built
    /// once by quantized_model::add_op (model load / calibration time).
    kernels::packed_qweights packed;
};

/// Quantized fully-connected layer. Weight layout (Fin, Fout).
struct q_dense_op {
    std::size_t in_features = 0;
    std::size_t out_features = 0;
    std::vector<std::int8_t> weights;
    std::vector<float> weight_scales;  // per output feature
    std::vector<float> bias;
    quant_params in_q;
    quant_params out_q;
    bool fused_relu = false;
    /// Derived, not serialized: packed-B layout, built by add_op.
    kernels::packed_qweights packed;
};

struct q_pool_op {
    std::size_t window = 2;
};

struct q_global_pool_op {};

struct q_flatten_op {};

using q_op = std::variant<q_conv_op, q_dense_op, q_pool_op, q_global_pool_op, q_flatten_op>;

/// Cost-model view of one quantized op.
struct q_op_info {
    op_kind kind = op_kind::reshape;
    std::size_t macs = 0;
};

/// An int8 network: ops plus the input quantization parameters.
class quantized_model {
public:
    quantized_model() = default;

    void set_input_params(const quant_params& p) { input_params_ = p; }

    /// Append an op. Conv/dense weights are packed into the kernel
    /// layer's layout here — once per model load, never on the hot path.
    void add_op(q_op op);

    std::size_t op_count() const { return ops_.size(); }
    const q_op& op_at(std::size_t i) const { return ops_[i]; }
    const quant_params& input_params() const { return input_params_; }

    /// Quantize `input` (batch supported), run the int8 pipeline, and
    /// dequantize the final activation (logits) to float.
    tensor forward(const tensor& input) const;

    /// Per-op MAC counts for an input of the given single-sample shape.
    std::vector<q_op_info> op_infos(std::vector<std::size_t> sample_shape) const;

private:
    std::vector<q_op> ops_;
    quant_params input_params_;
};

}  // namespace hawc
