#include "quant/q_types.hpp"

#include <algorithm>
#include <cmath>

namespace hawc {

quant_params quant_params::from_range(float lo, float hi) {
    // Non-finite bounds (a caller bypassing range_observer's filtering)
    // would make scale/zero_point NaN; collapse them to the zero-only
    // range instead so the parameters stay usable.
    if (!std::isfinite(lo)) lo = 0.0f;
    if (!std::isfinite(hi)) hi = 0.0f;
    // Always include zero so that zero padding / ReLU cutoffs are exact,
    // as TFLite requires.
    lo = std::min(lo, 0.0f);
    hi = std::max(hi, 0.0f);
    quant_params p;
    const float span = hi - lo;
    p.scale = span > 0.0f ? span / 255.0f : 1.0f;
    const float zp = -128.0f - lo / p.scale;
    p.zero_point = static_cast<std::int32_t>(std::lround(std::clamp(zp, -128.0f, 127.0f)));
    return p;
}

q_tensor quantize_tensor(const tensor& real, const quant_params& params) {
    q_tensor out;
    out.shape = real.shape();
    out.params = params;
    out.data.resize(real.size());
    for (std::size_t i = 0; i < real.size(); ++i) out.data[i] = params.quantize(real[i]);
    return out;
}

tensor dequantize_tensor(const q_tensor& quantized) {
    tensor out{quantized.shape};
    for (std::size_t i = 0; i < quantized.size(); ++i) {
        out[i] = quantized.params.dequantize(quantized.data[i]);
    }
    return out;
}

void range_observer::observe(const tensor& t) {
    for (std::size_t i = 0; i < t.size(); ++i) {
        const float v = t[i];
        // One NaN in a calibration tensor would poison lo/hi (min/max of a
        // NaN is NaN) and with it every scale/zero_point derived from this
        // observer; an Inf would flush the scale to Inf the same way.
        if (!std::isfinite(v)) continue;
        if (!seen) {
            lo = hi = v;
            seen = true;
        } else {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
}

quant_params range_observer::params() const { return quant_params::from_range(lo, hi); }

}  // namespace hawc
