#pragma once

// The fusion point between the kernel layer's int32 GEMM accumulators and
// the int8 activation stream: one pass per output row applies the
// per-channel dequantize-scale, the folded bias, the optional fused ReLU
// clamp, and the single rounding point of the whole quantization stack
// (saturate_to_int8 via quant_params::quantize — see q_types.hpp for the
// pinned half-away-from-zero contract).

#include <cstddef>
#include <cstdint>

#include "nn/kernels/kernels.hpp"
#include "quant/q_types.hpp"

namespace hawc {

/// out[j] = quantize((float(acc[j]) * in_scale) * weight_scales[j] + bias[j])
/// for j in [0, n), delegated to the dispatched ISA tier's fused requant
/// kernel. The contract keeps the exact pre-kernel-layer evaluation
/// order — scaling by in_scale first, then the per-channel weight
/// scale — so requantized outputs stay bit-identical to the old path
/// (do not "optimise" this into a precomputed combined scale: that
/// changes float rounding and breaks golden-corpus parity). Every tier
/// is pinned bit-exact against quant_params::quantize by
/// tests/test_kernels.cpp.
inline void requantize_row(const std::int32_t* acc, std::size_t n, float in_scale,
                           const float* weight_scales, const float* bias,
                           const quant_params& out_q, bool fused_relu, std::int8_t* out) {
    kernels::active_kernels().requant(acc, n, in_scale, weight_scales, bias, out_q.scale,
                                      out_q.zero_point, fused_relu, out);
}

}  // namespace hawc
