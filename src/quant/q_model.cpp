#include "quant/q_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "nn/kernels/kernels.hpp"
#include "quant/requantize.hpp"

namespace hawc {

namespace {

q_tensor run_conv(const q_conv_op& op, const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 4, "q_conv expects rank-4 input");
    const std::size_t batch = in.shape[0];
    const std::size_t in_h = in.shape[1];
    const std::size_t in_w = in.shape[2];
    HAWC_REQUIRE(in.shape[3] == op.in_channels, "q_conv channel mismatch");
    const std::size_t out_h = in_h + 2 * op.pad - op.kernel + 1;
    const std::size_t out_w = in_w + 2 * op.pad - op.kernel + 1;

    q_tensor out;
    out.shape = {batch, out_h, out_w, op.out_channels};
    out.params = op.out_q;
    out.data.resize(batch * out_h * out_w * op.out_channels);

    const auto zp_in = static_cast<std::int32_t>(op.in_q.zero_point);
    const std::size_t K = op.kernel * op.kernel * op.in_channels;
    const std::size_t a_stride = kernels::q_row_stride(K);
    const std::size_t pn = op.packed.padded_n();
    const kernels::kernel_ops& kern = kernels::active_kernels();

    // Same im2col + GEMM structure as the float path (see nn/conv2d.cpp):
    // the patch matrix stores (x - zp_in) widened to int16 so the
    // dispatched microkernel runs branch-free over the packed weights.
    // Integer accumulation is exact, so every ISA tier and every blocking
    // produces bit-identical accumulators (kernels.hpp contract).
    global_pool().parallel_for(0, batch * out_h, 4, [&](std::size_t lo, std::size_t hi,
                                                        std::size_t /*slot*/) {
        std::vector<std::int16_t> col(out_w * a_stride);
        std::vector<std::int32_t> acc(out_w * pn);
        for (std::size_t r = lo; r < hi; ++r) {
            const std::size_t n = r / out_h;
            const std::size_t oh = r % out_h;
            std::fill(col.begin(), col.end(), std::int16_t{0});
            for (std::size_t ow = 0; ow < out_w; ++ow) {
                std::int16_t* dst = col.data() + ow * a_stride;
                for (std::size_t kh = 0; kh < op.kernel; ++kh) {
                    const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh + kh) -
                                              static_cast<std::ptrdiff_t>(op.pad);
                    if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(in_h)) continue;
                    const std::size_t kw_lo = op.pad > ow ? op.pad - ow : 0;
                    const std::size_t kw_hi = std::min(op.kernel, in_w + op.pad - ow);
                    if (kw_lo >= kw_hi) continue;
                    const std::int8_t* src =
                        &in.data[((n * in_h + static_cast<std::size_t>(ih)) * in_w +
                                  (ow + kw_lo - op.pad)) *
                                 op.in_channels];
                    std::int16_t* run = dst + (kh * op.kernel + kw_lo) * op.in_channels;
                    const std::size_t count = (kw_hi - kw_lo) * op.in_channels;
                    for (std::size_t i = 0; i < count; ++i) {
                        run[i] = static_cast<std::int16_t>(static_cast<std::int32_t>(src[i]) -
                                                           zp_in);
                    }
                }
            }
            std::fill(acc.begin(), acc.end(), 0);
            kern.qgemm(col.data(), a_stride, op.packed, acc.data(), out_w);
            std::int8_t* out_row = &out.data[(n * out_h + oh) * out_w * op.out_channels];
            for (std::size_t ow = 0; ow < out_w; ++ow) {
                requantize_row(acc.data() + ow * pn, op.out_channels, op.in_q.scale,
                               op.weight_scales.data(), op.bias.data(), op.out_q,
                               op.fused_relu, out_row + ow * op.out_channels);
            }
        }
    });
    return out;
}

q_tensor run_dense(const q_dense_op& op, const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 2, "q_dense expects rank-2 input");
    HAWC_REQUIRE(in.shape[1] == op.in_features, "q_dense feature mismatch");
    const std::size_t batch = in.shape[0];

    q_tensor out;
    out.shape = {batch, op.out_features};
    out.params = op.out_q;
    out.data.resize(batch * op.out_features);

    const auto zp_in = static_cast<std::int32_t>(op.in_q.zero_point);
    const std::size_t a_stride = kernels::q_row_stride(op.in_features);
    const std::size_t pn = op.packed.padded_n();
    const kernels::kernel_ops& kern = kernels::active_kernels();

    // Parallel over batch rows with the same static-partitioning contract
    // as run_conv: chunk boundaries depend only on (batch, grain, pool
    // size) and each row writes a disjoint slice of out.data. Every chunk
    // is one blocked qgemm over the packed weight tiles — the microkernel
    // register-tiles multiple batch rows against each 8-column block, and
    // integer accumulation makes the result bit-identical for every chunk
    // shape and thread count.
    global_pool().parallel_for(0, batch, 1, [&](std::size_t lo, std::size_t hi,
                                                std::size_t /*slot*/) {
        const std::size_t rows = hi - lo;
        std::vector<std::int16_t> xw(rows * a_stride, 0);
        std::vector<std::int32_t> acc(rows * pn, 0);
        for (std::size_t n = lo; n < hi; ++n) {
            const std::int8_t* in_row = &in.data[n * op.in_features];
            std::int16_t* x_row = xw.data() + (n - lo) * a_stride;
            for (std::size_t i = 0; i < op.in_features; ++i) {
                x_row[i] =
                    static_cast<std::int16_t>(static_cast<std::int32_t>(in_row[i]) - zp_in);
            }
        }
        kern.qgemm(xw.data(), a_stride, op.packed, acc.data(), rows);
        for (std::size_t n = lo; n < hi; ++n) {
            requantize_row(acc.data() + (n - lo) * pn, op.out_features, op.in_q.scale,
                           op.weight_scales.data(), op.bias.data(), op.out_q, op.fused_relu,
                           &out.data[n * op.out_features]);
        }
    });
    return out;
}

q_tensor run_pool(const q_pool_op& op, const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 4, "q_pool expects rank-4 input");
    const std::size_t batch = in.shape[0];
    const std::size_t channels = in.shape[3];
    const std::size_t out_h = in.shape[1] / op.window;
    const std::size_t out_w = in.shape[2] / op.window;

    q_tensor out;
    out.shape = {batch, out_h, out_w, channels};
    out.params = in.params;  // max pooling preserves scale
    out.data.resize(batch * out_h * out_w * channels);

    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t oh = 0; oh < out_h; ++oh) {
            for (std::size_t ow = 0; ow < out_w; ++ow) {
                for (std::size_t c = 0; c < channels; ++c) {
                    std::int8_t best = -128;
                    for (std::size_t kh = 0; kh < op.window; ++kh) {
                        for (std::size_t kw = 0; kw < op.window; ++kw) {
                            const std::size_t ih = oh * op.window + kh;
                            const std::size_t iw = ow * op.window + kw;
                            best = std::max(
                                best,
                                in.data[((n * in.shape[1] + ih) * in.shape[2] + iw) * channels + c]);
                        }
                    }
                    out.data[((n * out_h + oh) * out_w + ow) * channels + c] = best;
                }
            }
        }
    }
    return out;
}

q_tensor run_global_pool(const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 4, "q_global_pool expects rank-4 input");
    const std::size_t batch = in.shape[0];
    const std::size_t spatial = in.shape[1] * in.shape[2];
    const std::size_t channels = in.shape[3];

    q_tensor out;
    out.shape = {batch, 1, 1, channels};
    out.params = in.params;
    out.data.assign(batch * channels, -128);

    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t s = 0; s < spatial; ++s) {
            const std::int8_t* px = &in.data[(n * spatial + s) * channels];
            std::int8_t* out_px = &out.data[n * channels];
            for (std::size_t c = 0; c < channels; ++c) out_px[c] = std::max(out_px[c], px[c]);
        }
    }
    return out;
}

q_tensor run_flatten(const q_tensor& in) {
    q_tensor out = in;
    std::size_t features = 1;
    for (std::size_t d = 1; d < in.shape.size(); ++d) features *= in.shape[d];
    out.shape = {in.shape[0], features};
    return out;
}

}  // namespace

void quantized_model::add_op(q_op op) {
    // Pack conv/dense weights into the kernel layer's tiled layout once,
    // at model-build time. The unpacked row-major weights stay on the op
    // as the source of truth (serialization, the parity harness's scalar
    // reference, and introspection all read them).
    std::visit(
        [](auto& concrete) {
            using T = std::decay_t<decltype(concrete)>;
            if constexpr (std::is_same_v<T, q_conv_op>) {
                const std::size_t k =
                    concrete.kernel * concrete.kernel * concrete.in_channels;
                concrete.packed =
                    kernels::pack_qweights(concrete.weights.data(), k, concrete.out_channels);
            } else if constexpr (std::is_same_v<T, q_dense_op>) {
                concrete.packed = kernels::pack_qweights(
                    concrete.weights.data(), concrete.in_features, concrete.out_features);
            }
        },
        op);
    ops_.push_back(std::move(op));
}

tensor quantized_model::forward(const tensor& input) const {
    q_tensor x = quantize_tensor(input, input_params_);
    for (const auto& op : ops_) {
        x = std::visit(
            [&](const auto& concrete) -> q_tensor {
                using T = std::decay_t<decltype(concrete)>;
                if constexpr (std::is_same_v<T, q_conv_op>) return run_conv(concrete, x);
                else if constexpr (std::is_same_v<T, q_dense_op>) return run_dense(concrete, x);
                else if constexpr (std::is_same_v<T, q_pool_op>) return run_pool(concrete, x);
                else if constexpr (std::is_same_v<T, q_global_pool_op>) return run_global_pool(x);
                else return run_flatten(x);
            },
            op);
    }
    return dequantize_tensor(x);
}

std::vector<q_op_info> quantized_model::op_infos(std::vector<std::size_t> sample_shape) const {
    std::vector<q_op_info> infos;
    std::vector<std::size_t> shape = std::move(sample_shape);  // without batch dim
    for (const auto& op : ops_) {
        q_op_info info;
        std::visit(
            [&](const auto& concrete) {
                using T = std::decay_t<decltype(concrete)>;
                if constexpr (std::is_same_v<T, q_conv_op>) {
                    const std::size_t out_h = shape[0] + 2 * concrete.pad - concrete.kernel + 1;
                    const std::size_t out_w = shape[1] + 2 * concrete.pad - concrete.kernel + 1;
                    info.kind = op_kind::convolution;
                    info.macs = out_h * out_w * concrete.out_channels * concrete.kernel *
                                concrete.kernel * concrete.in_channels;
                    shape = {out_h, out_w, concrete.out_channels};
                } else if constexpr (std::is_same_v<T, q_dense_op>) {
                    info.kind = op_kind::dense;
                    info.macs = concrete.in_features * concrete.out_features;
                    shape = {concrete.out_features};
                } else if constexpr (std::is_same_v<T, q_pool_op>) {
                    info.kind = op_kind::pooling;
                    shape = {shape[0] / concrete.window, shape[1] / concrete.window, shape[2]};
                } else if constexpr (std::is_same_v<T, q_global_pool_op>) {
                    info.kind = op_kind::pooling;
                    shape = {1, 1, shape[2]};
                } else {
                    info.kind = op_kind::reshape;
                    std::size_t features = 1;
                    for (auto d : shape) features *= d;
                    shape = {features};
                }
            },
            op);
        infos.push_back(info);
    }
    return infos;
}

}  // namespace hawc
