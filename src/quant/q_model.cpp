#include "quant/q_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace hawc {

namespace {

std::int8_t requantize(float real, const quant_params& out_q, bool fused_relu) {
    if (fused_relu && real < 0.0f) real = 0.0f;
    return out_q.quantize(real);
}

// acc (m_rows x n_cols) += A (m_rows x K) * W (K x n_cols), row-major;
// A holds zero-point-offset activations, so padding cells (stored as 0)
// drop out exactly. Integer accumulation is order-independent, and the
// worst case |x| * |w| * K is far below the int32 range for any layer in
// these models. Four A-rows per pass reuse each loaded W row.
void q_gemm_rows(const std::int16_t* a, std::size_t K, const std::int8_t* w, std::size_t n_cols,
                 std::int32_t* acc, std::size_t m_rows) {
    std::size_t m = 0;
    for (; m + 4 <= m_rows; m += 4) {
        const std::int16_t* a0 = a + (m + 0) * K;
        const std::int16_t* a1 = a + (m + 1) * K;
        const std::int16_t* a2 = a + (m + 2) * K;
        const std::int16_t* a3 = a + (m + 3) * K;
        std::int32_t* c0 = acc + (m + 0) * n_cols;
        std::int32_t* c1 = acc + (m + 1) * n_cols;
        std::int32_t* c2 = acc + (m + 2) * n_cols;
        std::int32_t* c3 = acc + (m + 3) * n_cols;
        for (std::size_t k = 0; k < K; ++k) {
            const std::int8_t* w_row = w + k * n_cols;
            const std::int32_t x0 = a0[k];
            const std::int32_t x1 = a1[k];
            const std::int32_t x2 = a2[k];
            const std::int32_t x3 = a3[k];
            for (std::size_t j = 0; j < n_cols; ++j) {
                const auto wv = static_cast<std::int32_t>(w_row[j]);
                c0[j] += x0 * wv;
                c1[j] += x1 * wv;
                c2[j] += x2 * wv;
                c3[j] += x3 * wv;
            }
        }
    }
    for (; m < m_rows; ++m) {
        const std::int16_t* am = a + m * K;
        std::int32_t* cm = acc + m * n_cols;
        for (std::size_t k = 0; k < K; ++k) {
            const std::int32_t x = am[k];
            const std::int8_t* w_row = w + k * n_cols;
            for (std::size_t j = 0; j < n_cols; ++j) {
                cm[j] += x * static_cast<std::int32_t>(w_row[j]);
            }
        }
    }
}

q_tensor run_conv(const q_conv_op& op, const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 4, "q_conv expects rank-4 input");
    const std::size_t batch = in.shape[0];
    const std::size_t in_h = in.shape[1];
    const std::size_t in_w = in.shape[2];
    HAWC_REQUIRE(in.shape[3] == op.in_channels, "q_conv channel mismatch");
    const std::size_t out_h = in_h + 2 * op.pad - op.kernel + 1;
    const std::size_t out_w = in_w + 2 * op.pad - op.kernel + 1;

    q_tensor out;
    out.shape = {batch, out_h, out_w, op.out_channels};
    out.params = op.out_q;
    out.data.resize(batch * out_h * out_w * op.out_channels);

    const auto zp_in = static_cast<std::int32_t>(op.in_q.zero_point);
    const std::size_t K = op.kernel * op.kernel * op.in_channels;

    // Same im2col + GEMM structure as the float path (see nn/conv2d.cpp):
    // the patch matrix stores (x - zp_in) widened to int16 so the inner
    // loops are branch-free int32 multiply-accumulates.
    global_pool().parallel_for(0, batch * out_h, 4, [&](std::size_t lo, std::size_t hi,
                                                        std::size_t /*slot*/) {
        std::vector<std::int16_t> col(out_w * K);
        std::vector<std::int32_t> acc(out_w * op.out_channels);
        for (std::size_t r = lo; r < hi; ++r) {
            const std::size_t n = r / out_h;
            const std::size_t oh = r % out_h;
            std::fill(col.begin(), col.end(), std::int16_t{0});
            for (std::size_t ow = 0; ow < out_w; ++ow) {
                std::int16_t* dst = col.data() + ow * K;
                for (std::size_t kh = 0; kh < op.kernel; ++kh) {
                    const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh + kh) -
                                              static_cast<std::ptrdiff_t>(op.pad);
                    if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(in_h)) continue;
                    const std::size_t kw_lo = op.pad > ow ? op.pad - ow : 0;
                    const std::size_t kw_hi = std::min(op.kernel, in_w + op.pad - ow);
                    if (kw_lo >= kw_hi) continue;
                    const std::int8_t* src =
                        &in.data[((n * in_h + static_cast<std::size_t>(ih)) * in_w +
                                  (ow + kw_lo - op.pad)) *
                                 op.in_channels];
                    std::int16_t* run = dst + (kh * op.kernel + kw_lo) * op.in_channels;
                    const std::size_t count = (kw_hi - kw_lo) * op.in_channels;
                    for (std::size_t i = 0; i < count; ++i) {
                        run[i] = static_cast<std::int16_t>(static_cast<std::int32_t>(src[i]) -
                                                           zp_in);
                    }
                }
            }
            std::fill(acc.begin(), acc.end(), 0);
            q_gemm_rows(col.data(), K, op.weights.data(), op.out_channels, acc.data(), out_w);
            std::int8_t* out_row = &out.data[(n * out_h + oh) * out_w * op.out_channels];
            for (std::size_t ow = 0; ow < out_w; ++ow) {
                const std::int32_t* acc_px = acc.data() + ow * op.out_channels;
                std::int8_t* out_px = out_row + ow * op.out_channels;
                for (std::size_t oc = 0; oc < op.out_channels; ++oc) {
                    const float real = static_cast<float>(acc_px[oc]) * op.in_q.scale *
                                           op.weight_scales[oc] +
                                       op.bias[oc];
                    out_px[oc] = requantize(real, op.out_q, op.fused_relu);
                }
            }
        }
    });
    return out;
}

q_tensor run_dense(const q_dense_op& op, const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 2, "q_dense expects rank-2 input");
    HAWC_REQUIRE(in.shape[1] == op.in_features, "q_dense feature mismatch");
    const std::size_t batch = in.shape[0];

    q_tensor out;
    out.shape = {batch, op.out_features};
    out.params = op.out_q;
    out.data.resize(batch * op.out_features);

    const auto zp_in = static_cast<std::int32_t>(op.in_q.zero_point);

    // Parallel over batch rows with the same static-partitioning contract
    // as run_conv: each row's accumulator depends only on that row, chunk
    // boundaries depend only on (batch, grain, pool size), and every row
    // writes a disjoint slice of out.data — so the result is bit-identical
    // for every thread count.
    global_pool().parallel_for(0, batch, 1, [&](std::size_t lo, std::size_t hi,
                                                std::size_t /*slot*/) {
        std::vector<std::int32_t> acc(op.out_features);
        for (std::size_t n = lo; n < hi; ++n) {
            std::fill(acc.begin(), acc.end(), 0);
            const std::int8_t* in_row = &in.data[n * op.in_features];
            for (std::size_t i = 0; i < op.in_features; ++i) {
                const std::int32_t x = static_cast<std::int32_t>(in_row[i]) - zp_in;
                if (x == 0) continue;
                const std::int8_t* w_row = &op.weights[i * op.out_features];
                for (std::size_t o = 0; o < op.out_features; ++o) {
                    acc[o] += x * static_cast<std::int32_t>(w_row[o]);
                }
            }
            std::int8_t* out_row = &out.data[n * op.out_features];
            for (std::size_t o = 0; o < op.out_features; ++o) {
                const float real =
                    static_cast<float>(acc[o]) * op.in_q.scale * op.weight_scales[o] +
                    op.bias[o];
                out_row[o] = requantize(real, op.out_q, op.fused_relu);
            }
        }
    });
    return out;
}

q_tensor run_pool(const q_pool_op& op, const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 4, "q_pool expects rank-4 input");
    const std::size_t batch = in.shape[0];
    const std::size_t channels = in.shape[3];
    const std::size_t out_h = in.shape[1] / op.window;
    const std::size_t out_w = in.shape[2] / op.window;

    q_tensor out;
    out.shape = {batch, out_h, out_w, channels};
    out.params = in.params;  // max pooling preserves scale
    out.data.resize(batch * out_h * out_w * channels);

    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t oh = 0; oh < out_h; ++oh) {
            for (std::size_t ow = 0; ow < out_w; ++ow) {
                for (std::size_t c = 0; c < channels; ++c) {
                    std::int8_t best = -128;
                    for (std::size_t kh = 0; kh < op.window; ++kh) {
                        for (std::size_t kw = 0; kw < op.window; ++kw) {
                            const std::size_t ih = oh * op.window + kh;
                            const std::size_t iw = ow * op.window + kw;
                            best = std::max(
                                best,
                                in.data[((n * in.shape[1] + ih) * in.shape[2] + iw) * channels + c]);
                        }
                    }
                    out.data[((n * out_h + oh) * out_w + ow) * channels + c] = best;
                }
            }
        }
    }
    return out;
}

q_tensor run_global_pool(const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 4, "q_global_pool expects rank-4 input");
    const std::size_t batch = in.shape[0];
    const std::size_t spatial = in.shape[1] * in.shape[2];
    const std::size_t channels = in.shape[3];

    q_tensor out;
    out.shape = {batch, 1, 1, channels};
    out.params = in.params;
    out.data.assign(batch * channels, -128);

    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t s = 0; s < spatial; ++s) {
            const std::int8_t* px = &in.data[(n * spatial + s) * channels];
            std::int8_t* out_px = &out.data[n * channels];
            for (std::size_t c = 0; c < channels; ++c) out_px[c] = std::max(out_px[c], px[c]);
        }
    }
    return out;
}

q_tensor run_flatten(const q_tensor& in) {
    q_tensor out = in;
    std::size_t features = 1;
    for (std::size_t d = 1; d < in.shape.size(); ++d) features *= in.shape[d];
    out.shape = {in.shape[0], features};
    return out;
}

}  // namespace

tensor quantized_model::forward(const tensor& input) const {
    q_tensor x = quantize_tensor(input, input_params_);
    for (const auto& op : ops_) {
        x = std::visit(
            [&](const auto& concrete) -> q_tensor {
                using T = std::decay_t<decltype(concrete)>;
                if constexpr (std::is_same_v<T, q_conv_op>) return run_conv(concrete, x);
                else if constexpr (std::is_same_v<T, q_dense_op>) return run_dense(concrete, x);
                else if constexpr (std::is_same_v<T, q_pool_op>) return run_pool(concrete, x);
                else if constexpr (std::is_same_v<T, q_global_pool_op>) return run_global_pool(x);
                else return run_flatten(x);
            },
            op);
    }
    return dequantize_tensor(x);
}

std::vector<q_op_info> quantized_model::op_infos(std::vector<std::size_t> sample_shape) const {
    std::vector<q_op_info> infos;
    std::vector<std::size_t> shape = std::move(sample_shape);  // without batch dim
    for (const auto& op : ops_) {
        q_op_info info;
        std::visit(
            [&](const auto& concrete) {
                using T = std::decay_t<decltype(concrete)>;
                if constexpr (std::is_same_v<T, q_conv_op>) {
                    const std::size_t out_h = shape[0] + 2 * concrete.pad - concrete.kernel + 1;
                    const std::size_t out_w = shape[1] + 2 * concrete.pad - concrete.kernel + 1;
                    info.kind = op_kind::convolution;
                    info.macs = out_h * out_w * concrete.out_channels * concrete.kernel *
                                concrete.kernel * concrete.in_channels;
                    shape = {out_h, out_w, concrete.out_channels};
                } else if constexpr (std::is_same_v<T, q_dense_op>) {
                    info.kind = op_kind::dense;
                    info.macs = concrete.in_features * concrete.out_features;
                    shape = {concrete.out_features};
                } else if constexpr (std::is_same_v<T, q_pool_op>) {
                    info.kind = op_kind::pooling;
                    shape = {shape[0] / concrete.window, shape[1] / concrete.window, shape[2]};
                } else if constexpr (std::is_same_v<T, q_global_pool_op>) {
                    info.kind = op_kind::pooling;
                    shape = {1, 1, shape[2]};
                } else {
                    info.kind = op_kind::reshape;
                    std::size_t features = 1;
                    for (auto d : shape) features *= d;
                    shape = {features};
                }
            },
            op);
        infos.push_back(info);
    }
    return infos;
}

}  // namespace hawc
