#include "quant/q_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hawc {

namespace {

std::int8_t requantize(float real, const quant_params& out_q, bool fused_relu) {
    if (fused_relu && real < 0.0f) real = 0.0f;
    return out_q.quantize(real);
}

q_tensor run_conv(const q_conv_op& op, const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 4, "q_conv expects rank-4 input");
    const std::size_t batch = in.shape[0];
    const std::size_t in_h = in.shape[1];
    const std::size_t in_w = in.shape[2];
    HAWC_REQUIRE(in.shape[3] == op.in_channels, "q_conv channel mismatch");
    const std::size_t out_h = in_h + 2 * op.pad - op.kernel + 1;
    const std::size_t out_w = in_w + 2 * op.pad - op.kernel + 1;

    q_tensor out;
    out.shape = {batch, out_h, out_w, op.out_channels};
    out.params = op.out_q;
    out.data.resize(batch * out_h * out_w * op.out_channels);

    const auto zp_in = static_cast<std::int32_t>(op.in_q.zero_point);
    std::vector<std::int32_t> acc(op.out_channels);

    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t oh = 0; oh < out_h; ++oh) {
            for (std::size_t ow = 0; ow < out_w; ++ow) {
                std::fill(acc.begin(), acc.end(), 0);
                for (std::size_t kh = 0; kh < op.kernel; ++kh) {
                    const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh + kh) -
                                              static_cast<std::ptrdiff_t>(op.pad);
                    if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(in_h)) continue;
                    for (std::size_t kw = 0; kw < op.kernel; ++kw) {
                        const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(ow + kw) -
                                                  static_cast<std::ptrdiff_t>(op.pad);
                        if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(in_w)) continue;
                        const std::int8_t* in_px =
                            &in.data[((n * in_h + static_cast<std::size_t>(ih)) * in_w +
                                      static_cast<std::size_t>(iw)) *
                                     op.in_channels];
                        const std::int8_t* w_px =
                            &op.weights[(kh * op.kernel + kw) * op.in_channels * op.out_channels];
                        for (std::size_t ic = 0; ic < op.in_channels; ++ic) {
                            const std::int32_t x = static_cast<std::int32_t>(in_px[ic]) - zp_in;
                            if (x == 0) continue;
                            const std::int8_t* w_row = &w_px[ic * op.out_channels];
                            for (std::size_t oc = 0; oc < op.out_channels; ++oc) {
                                acc[oc] += x * static_cast<std::int32_t>(w_row[oc]);
                            }
                        }
                    }
                }
                std::int8_t* out_px =
                    &out.data[((n * out_h + oh) * out_w + ow) * op.out_channels];
                for (std::size_t oc = 0; oc < op.out_channels; ++oc) {
                    const float real = static_cast<float>(acc[oc]) * op.in_q.scale *
                                           op.weight_scales[oc] +
                                       op.bias[oc];
                    out_px[oc] = requantize(real, op.out_q, op.fused_relu);
                }
            }
        }
    }
    return out;
}

q_tensor run_dense(const q_dense_op& op, const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 2, "q_dense expects rank-2 input");
    HAWC_REQUIRE(in.shape[1] == op.in_features, "q_dense feature mismatch");
    const std::size_t batch = in.shape[0];

    q_tensor out;
    out.shape = {batch, op.out_features};
    out.params = op.out_q;
    out.data.resize(batch * op.out_features);

    const auto zp_in = static_cast<std::int32_t>(op.in_q.zero_point);
    std::vector<std::int32_t> acc(op.out_features);

    for (std::size_t n = 0; n < batch; ++n) {
        std::fill(acc.begin(), acc.end(), 0);
        const std::int8_t* in_row = &in.data[n * op.in_features];
        for (std::size_t i = 0; i < op.in_features; ++i) {
            const std::int32_t x = static_cast<std::int32_t>(in_row[i]) - zp_in;
            if (x == 0) continue;
            const std::int8_t* w_row = &op.weights[i * op.out_features];
            for (std::size_t o = 0; o < op.out_features; ++o) {
                acc[o] += x * static_cast<std::int32_t>(w_row[o]);
            }
        }
        std::int8_t* out_row = &out.data[n * op.out_features];
        for (std::size_t o = 0; o < op.out_features; ++o) {
            const float real =
                static_cast<float>(acc[o]) * op.in_q.scale * op.weight_scales[o] + op.bias[o];
            out_row[o] = requantize(real, op.out_q, op.fused_relu);
        }
    }
    return out;
}

q_tensor run_pool(const q_pool_op& op, const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 4, "q_pool expects rank-4 input");
    const std::size_t batch = in.shape[0];
    const std::size_t channels = in.shape[3];
    const std::size_t out_h = in.shape[1] / op.window;
    const std::size_t out_w = in.shape[2] / op.window;

    q_tensor out;
    out.shape = {batch, out_h, out_w, channels};
    out.params = in.params;  // max pooling preserves scale
    out.data.resize(batch * out_h * out_w * channels);

    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t oh = 0; oh < out_h; ++oh) {
            for (std::size_t ow = 0; ow < out_w; ++ow) {
                for (std::size_t c = 0; c < channels; ++c) {
                    std::int8_t best = -128;
                    for (std::size_t kh = 0; kh < op.window; ++kh) {
                        for (std::size_t kw = 0; kw < op.window; ++kw) {
                            const std::size_t ih = oh * op.window + kh;
                            const std::size_t iw = ow * op.window + kw;
                            best = std::max(
                                best,
                                in.data[((n * in.shape[1] + ih) * in.shape[2] + iw) * channels + c]);
                        }
                    }
                    out.data[((n * out_h + oh) * out_w + ow) * channels + c] = best;
                }
            }
        }
    }
    return out;
}

q_tensor run_global_pool(const q_tensor& in) {
    HAWC_REQUIRE(in.shape.size() == 4, "q_global_pool expects rank-4 input");
    const std::size_t batch = in.shape[0];
    const std::size_t spatial = in.shape[1] * in.shape[2];
    const std::size_t channels = in.shape[3];

    q_tensor out;
    out.shape = {batch, 1, 1, channels};
    out.params = in.params;
    out.data.assign(batch * channels, -128);

    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t s = 0; s < spatial; ++s) {
            const std::int8_t* px = &in.data[(n * spatial + s) * channels];
            std::int8_t* out_px = &out.data[n * channels];
            for (std::size_t c = 0; c < channels; ++c) out_px[c] = std::max(out_px[c], px[c]);
        }
    }
    return out;
}

q_tensor run_flatten(const q_tensor& in) {
    q_tensor out = in;
    std::size_t features = 1;
    for (std::size_t d = 1; d < in.shape.size(); ++d) features *= in.shape[d];
    out.shape = {in.shape[0], features};
    return out;
}

}  // namespace

tensor quantized_model::forward(const tensor& input) const {
    q_tensor x = quantize_tensor(input, input_params_);
    for (const auto& op : ops_) {
        x = std::visit(
            [&](const auto& concrete) -> q_tensor {
                using T = std::decay_t<decltype(concrete)>;
                if constexpr (std::is_same_v<T, q_conv_op>) return run_conv(concrete, x);
                else if constexpr (std::is_same_v<T, q_dense_op>) return run_dense(concrete, x);
                else if constexpr (std::is_same_v<T, q_pool_op>) return run_pool(concrete, x);
                else if constexpr (std::is_same_v<T, q_global_pool_op>) return run_global_pool(x);
                else return run_flatten(x);
            },
            op);
    }
    return dequantize_tensor(x);
}

std::vector<q_op_info> quantized_model::op_infos(std::vector<std::size_t> sample_shape) const {
    std::vector<q_op_info> infos;
    std::vector<std::size_t> shape = std::move(sample_shape);  // without batch dim
    for (const auto& op : ops_) {
        q_op_info info;
        std::visit(
            [&](const auto& concrete) {
                using T = std::decay_t<decltype(concrete)>;
                if constexpr (std::is_same_v<T, q_conv_op>) {
                    const std::size_t out_h = shape[0] + 2 * concrete.pad - concrete.kernel + 1;
                    const std::size_t out_w = shape[1] + 2 * concrete.pad - concrete.kernel + 1;
                    info.kind = op_kind::convolution;
                    info.macs = out_h * out_w * concrete.out_channels * concrete.kernel *
                                concrete.kernel * concrete.in_channels;
                    shape = {out_h, out_w, concrete.out_channels};
                } else if constexpr (std::is_same_v<T, q_dense_op>) {
                    info.kind = op_kind::dense;
                    info.macs = concrete.in_features * concrete.out_features;
                    shape = {concrete.out_features};
                } else if constexpr (std::is_same_v<T, q_pool_op>) {
                    info.kind = op_kind::pooling;
                    shape = {shape[0] / concrete.window, shape[1] / concrete.window, shape[2]};
                } else if constexpr (std::is_same_v<T, q_global_pool_op>) {
                    info.kind = op_kind::pooling;
                    shape = {1, 1, shape[2]};
                } else {
                    info.kind = op_kind::reshape;
                    std::size_t features = 1;
                    for (auto d : shape) features *= d;
                    shape = {features};
                }
            },
            op);
        infos.push_back(info);
    }
    return infos;
}

}  // namespace hawc
