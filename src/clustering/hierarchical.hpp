#pragma once

// Agglomerative hierarchical clustering (Table IV baseline). Implements
// the nearest-neighbour-chain algorithm with Lance-Williams updates for
// single, complete, and average linkage, then cuts the dendrogram either
// at a dissimilarity threshold or at a target cluster count.
//
// The paper observes this baseline "often attributes bounding boxes of
// the same object to separate clusters", wildly overcounting crowds —
// which is exactly what a diameter-capped (complete-linkage) cut does to
// sparse LiDAR targets.

#include "clustering/cluster_result.hpp"

namespace hawc {

enum class linkage { single, complete, average };

struct hierarchical_config {
    linkage link = linkage::complete;
    double cut_distance = 0.8;   // dendrogram cut height (metric space)
    cluster_metric metric{};
    std::size_t max_points = 6000;  // guard: O(n^2) memory
};

/// One merge step of the dendrogram (children may be leaves or merges).
struct dendrogram_merge {
    std::size_t left = 0;
    std::size_t right = 0;
    double height = 0.0;
};

/// Full agglomeration: n-1 merges over the scaled cloud.
/// Node ids: 0..n-1 are leaves; n+i is the cluster created by merge i.
std::vector<dendrogram_merge> build_dendrogram(const point_cloud& cloud,
                                               const hierarchical_config& config);

/// Cut the dendrogram at config.cut_distance.
cluster_result hierarchical_cluster(const point_cloud& cloud,
                                    const hierarchical_config& config);

/// Cut the dendrogram into exactly k clusters (k <= n).
cluster_result hierarchical_cluster_k(const point_cloud& cloud, std::size_t k,
                                      const hierarchical_config& config);

}  // namespace hawc
