#include "clustering/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hawc {

kmeans_result kmeans(const point_cloud& cloud, const kmeans_config& config, rng& random) {
    HAWC_REQUIRE(config.k >= 1, "k must be at least 1");
    kmeans_result result;
    if (cloud.empty()) return result;

    const point_cloud data = config.metric.scale(cloud);
    const std::size_t n = data.size();
    const std::size_t k = std::min(config.k, n);

    // k-means++ seeding.
    std::vector<vec3> centroids;
    centroids.reserve(k);
    centroids.push_back(data[random.uniform_index(n)]);
    std::vector<double> best_d_sq(n, std::numeric_limits<double>::infinity());
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            best_d_sq[i] = std::min(best_d_sq[i], data[i].distance_sq_to(centroids.back()));
            total += best_d_sq[i];
        }
        if (total <= 0.0) {
            centroids.push_back(data[random.uniform_index(n)]);
            continue;
        }
        double target = random.uniform() * total;
        std::size_t chosen = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            target -= best_d_sq[i];
            if (target <= 0.0) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(data[chosen]);
    }

    std::vector<int> labels(n, 0);
    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
        result.iterations = iter + 1;
        // Assignment step.
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::infinity();
            for (std::size_t c = 0; c < centroids.size(); ++c) {
                const double d = data[i].distance_sq_to(centroids[c]);
                if (d < best) {
                    best = d;
                    labels[i] = static_cast<int>(c);
                }
            }
        }
        // Update step.
        std::vector<vec3> sums(centroids.size());
        std::vector<std::size_t> counts(centroids.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            sums[static_cast<std::size_t>(labels[i])] += data[i];
            ++counts[static_cast<std::size_t>(labels[i])];
        }
        double max_shift = 0.0;
        for (std::size_t c = 0; c < centroids.size(); ++c) {
            if (counts[c] == 0) continue;  // keep empty centroid in place
            const vec3 updated = sums[c] / static_cast<double>(counts[c]);
            max_shift = std::max(max_shift, updated.distance_to(centroids[c]));
            centroids[c] = updated;
        }
        if (max_shift < config.tolerance) break;
    }

    result.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        result.inertia += data[i].distance_sq_to(centroids[static_cast<std::size_t>(labels[i])]);
    }
    result.clusters.labels = std::move(labels);
    result.clusters.cluster_count = centroids.size();
    result.centroids = std::move(centroids);
    return result;
}

std::size_t kmeans_elbow_k(const point_cloud& cloud, std::size_t k_max,
                           const kmeans_config& base, rng& random) {
    HAWC_REQUIRE(k_max >= 1, "k_max must be at least 1");
    std::vector<double> inertias;
    for (std::size_t k = 1; k <= k_max; ++k) {
        kmeans_config cfg = base;
        cfg.k = k;
        inertias.push_back(kmeans(cloud, cfg, random).inertia + 1e-12);
    }
    // Largest relative drop marks the elbow.
    std::size_t best_k = 1;
    double best_drop = -1.0;
    for (std::size_t k = 1; k < inertias.size(); ++k) {
        const double drop = (inertias[k - 1] - inertias[k]) / inertias[k - 1];
        if (drop > best_drop) {
            best_drop = drop;
            best_k = k + 1;
        }
    }
    return best_k;
}

}  // namespace hawc
