#include "clustering/dbscan.hpp"

#include <deque>

#include "common/error.hpp"

namespace hawc {

cluster_result dbscan_scaled(const point_cloud& scaled_cloud, const kd_tree& tree, double eps,
                             std::size_t min_points) {
    HAWC_REQUIRE(eps > 0.0, "dbscan eps must be positive");
    HAWC_REQUIRE(min_points >= 1, "dbscan min_points must be at least 1");

    constexpr int unvisited = -2;
    cluster_result result;
    result.labels.assign(scaled_cloud.size(), unvisited);

    int next_cluster = 0;
    std::deque<std::size_t> frontier;

    for (std::size_t seed = 0; seed < scaled_cloud.size(); ++seed) {
        if (result.labels[seed] != unvisited) continue;

        auto seed_neighbors = tree.radius_search(scaled_cloud[seed], eps);
        if (seed_neighbors.size() < min_points) {
            result.labels[seed] = noise_label;  // may be relabelled as border later
            continue;
        }

        // Grow a new cluster from this core point (BFS expansion).
        const int cluster = next_cluster++;
        result.labels[seed] = cluster;
        frontier.assign(seed_neighbors.begin(), seed_neighbors.end());

        while (!frontier.empty()) {
            const std::size_t p = frontier.front();
            frontier.pop_front();
            if (result.labels[p] == noise_label) {
                result.labels[p] = cluster;  // border point
                continue;
            }
            if (result.labels[p] != unvisited) continue;
            result.labels[p] = cluster;

            auto neighbors = tree.radius_search(scaled_cloud[p], eps);
            if (neighbors.size() >= min_points) {
                for (auto n : neighbors) {
                    if (result.labels[n] == unvisited || result.labels[n] == noise_label) {
                        frontier.push_back(n);
                    }
                }
            }
        }
    }

    result.cluster_count = static_cast<std::size_t>(next_cluster);
    return result;
}

cluster_result dbscan(const point_cloud& cloud, const dbscan_config& config) {
    if (cloud.empty()) return {};
    const point_cloud scaled = config.metric.scale(cloud);
    const kd_tree tree{scaled};
    return dbscan_scaled(scaled, tree, config.eps, config.min_points);
}

}  // namespace hawc
