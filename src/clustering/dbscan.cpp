#include "clustering/dbscan.hpp"

#include <cstdint>
#include <numeric>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/metrics.hpp"

namespace hawc {

// Two-phase DBSCAN. Phase 1 computes every point's eps-neighbourhood and
// core flag — queries are independent, so they fan out across the thread
// pool with per-chunk scratch buffers and land in one CSR structure
// (chunks are contiguous and copied back in slot order, so the CSR is
// byte-identical for any thread count). Phase 2 is the sequential label
// expansion; it only walks the precomputed lists, which preserves the
// exact labels of the original single-pass implementation while doing no
// tree queries at all. Points claim their label when they enter the
// frontier, so each point is enqueued at most once and the frontier is
// bounded by the cloud size even on dense clusters (the old BFS could
// re-enqueue a point once per neighbouring core point).
cluster_result dbscan_scaled(const point_cloud& scaled_cloud, const kd_tree& tree, double eps,
                             std::size_t min_points, const telemetry_handle& telem) {
    HAWC_REQUIRE(eps > 0.0, "dbscan eps must be positive");
    telemetry::scoped_span span{telem, "dbscan"};
    HAWC_REQUIRE(min_points >= 1, "dbscan min_points must be at least 1");

    constexpr int unvisited = -2;
    const std::size_t n = scaled_cloud.size();
    cluster_result result;
    result.labels.assign(n, unvisited);
    if (n == 0) return result;

    // ---- Phase 1: parallel neighbour lists + core flags (CSR) ----
    thread_pool& pool = global_pool();
    std::vector<std::uint32_t> counts(n, 0);
    std::vector<std::vector<std::uint32_t>> chunk_lists(pool.max_slots());

    pool.parallel_for(0, n, 256, [&](std::size_t lo, std::size_t hi, std::size_t slot) {
        std::vector<std::uint32_t>& local = chunk_lists[slot];
        local.clear();
        std::vector<std::size_t> found;  // per-query scratch, reused
        for (std::size_t i = lo; i < hi; ++i) {
            tree.radius_search_into(scaled_cloud[i], eps, found);
            counts[i] = static_cast<std::uint32_t>(found.size());
            local.insert(local.end(), found.begin(), found.end());
        }
    });

    std::vector<std::size_t> offsets(n + 1, 0);
    std::inclusive_scan(counts.begin(), counts.end(), offsets.begin() + 1,
                        std::plus<>{}, std::size_t{0});
    std::vector<std::uint32_t> neighbors;
    neighbors.reserve(offsets[n]);
    for (const auto& local : chunk_lists) {
        neighbors.insert(neighbors.end(), local.begin(), local.end());
    }

    // ---- Phase 2: sequential label expansion over the CSR lists ----
    int next_cluster = 0;
    std::vector<std::uint32_t> frontier;
    frontier.reserve(n);

    const auto is_core = [&](std::size_t p) { return counts[p] >= min_points; };
    const auto claim_neighbors = [&](std::size_t p, int cluster) {
        for (std::size_t j = offsets[p]; j < offsets[p + 1]; ++j) {
            const std::uint32_t nb = neighbors[j];
            const int label = result.labels[nb];
            if (label == unvisited || label == noise_label) {
                result.labels[nb] = cluster;  // border until proven core
                frontier.push_back(nb);
            }
        }
    };

    for (std::size_t seed = 0; seed < n; ++seed) {
        if (result.labels[seed] != unvisited) continue;
        if (!is_core(seed)) {
            result.labels[seed] = noise_label;  // may be relabelled as border later
            continue;
        }

        const int cluster = next_cluster++;
        result.labels[seed] = cluster;
        frontier.clear();
        claim_neighbors(seed, cluster);
        for (std::size_t head = 0; head < frontier.size(); ++head) {
            const std::uint32_t p = frontier[head];
            if (is_core(p)) claim_neighbors(p, cluster);
        }
    }

    result.cluster_count = static_cast<std::size_t>(next_cluster);
    if (telem.metrics != nullptr) {
        telem.metrics->make_counter("hawc_dbscan_points_total", "Points clustered by DBSCAN")
            .add(n);
        telem.metrics->make_counter("hawc_dbscan_clusters_total", "Clusters DBSCAN produced")
            .add(result.cluster_count);
    }
    return result;
}

cluster_result dbscan(const point_cloud& cloud, const dbscan_config& config,
                      const telemetry_handle& telem) {
    if (cloud.empty()) return {};
    const point_cloud scaled = config.metric.scale(cloud);
    const kd_tree tree{scaled};
    return dbscan_scaled(scaled, tree, config.eps, config.min_points, telem);
}

}  // namespace hawc
