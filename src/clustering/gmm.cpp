#include "clustering/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.hpp"
#include "clustering/kmeans.hpp"

namespace hawc {

namespace {

/// Log density of a diagonal Gaussian at p.
double log_gaussian(const vec3& p, const gmm_component& c) {
    constexpr double log_2pi = 1.8378770664093453;  // log(2*pi)
    double log_det = 0.0;
    double quad = 0.0;
    const double d[3] = {p.x - c.mean.x, p.y - c.mean.y, p.z - c.mean.z};
    const double v[3] = {c.variance.x, c.variance.y, c.variance.z};
    for (int axis = 0; axis < 3; ++axis) {
        log_det += std::log(v[axis]);
        quad += d[axis] * d[axis] / v[axis];
    }
    return -0.5 * (3.0 * log_2pi + log_det + quad);
}

double log_sum_exp(const std::vector<double>& xs) {
    const double m = *std::max_element(xs.begin(), xs.end());
    if (!std::isfinite(m)) return m;
    double sum = 0.0;
    for (double x : xs) sum += std::exp(x - m);
    return m + std::log(sum);
}

}  // namespace

gmm_result gmm_cluster(const point_cloud& cloud, const gmm_config& config, rng& random) {
    HAWC_REQUIRE(config.components >= 1, "need at least one component");
    gmm_result result;
    if (cloud.empty()) return result;

    const point_cloud data = config.metric.scale(cloud);
    const std::size_t n = data.size();
    const std::size_t k = std::min(config.components, n);

    // Initialise from k-means for stable, deterministic-given-seed starts.
    kmeans_config km;
    km.k = k;
    km.metric = cluster_metric{1.0};  // data already scaled
    const auto seed = kmeans(data, km, random);

    result.components.resize(k);
    {
        std::vector<vec3> sq_sums(k);
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const auto c = static_cast<std::size_t>(seed.clusters.labels[i]);
            const vec3 d = data[i] - seed.centroids[c];
            sq_sums[c] += vec3{d.x * d.x, d.y * d.y, d.z * d.z};
            ++counts[c];
        }
        for (std::size_t c = 0; c < k; ++c) {
            result.components[c].mean = seed.centroids[c];
            const double denom = static_cast<double>(std::max<std::size_t>(counts[c], 1));
            result.components[c].variance = {
                std::max(sq_sums[c].x / denom, config.min_variance),
                std::max(sq_sums[c].y / denom, config.min_variance),
                std::max(sq_sums[c].z / denom, config.min_variance)};
            result.components[c].weight =
                std::max(1e-9, static_cast<double>(counts[c]) / static_cast<double>(n));
        }
    }

    std::vector<std::vector<double>> resp(n, std::vector<double>(k, 0.0));
    double prev_ll = -std::numeric_limits<double>::infinity();

    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
        result.iterations = iter + 1;

        // E step.
        double ll = 0.0;
        std::vector<double> log_probs(k);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t c = 0; c < k; ++c) {
                log_probs[c] = std::log(result.components[c].weight) +
                               log_gaussian(data[i], result.components[c]);
            }
            const double norm = log_sum_exp(log_probs);
            ll += norm;
            for (std::size_t c = 0; c < k; ++c) resp[i][c] = std::exp(log_probs[c] - norm);
        }
        result.log_likelihood = ll;

        // M step.
        for (std::size_t c = 0; c < k; ++c) {
            double weight_sum = 0.0;
            vec3 mean_sum;
            for (std::size_t i = 0; i < n; ++i) {
                weight_sum += resp[i][c];
                mean_sum += data[i] * resp[i][c];
            }
            if (weight_sum < 1e-9) continue;  // dead component: freeze
            const vec3 mean = mean_sum / weight_sum;
            vec3 var_sum;
            for (std::size_t i = 0; i < n; ++i) {
                const vec3 d = data[i] - mean;
                var_sum += vec3{d.x * d.x, d.y * d.y, d.z * d.z} * resp[i][c];
            }
            result.components[c].mean = mean;
            result.components[c].variance = {
                std::max(var_sum.x / weight_sum, config.min_variance),
                std::max(var_sum.y / weight_sum, config.min_variance),
                std::max(var_sum.z / weight_sum, config.min_variance)};
            result.components[c].weight = weight_sum / static_cast<double>(n);
        }

        if (std::abs(ll - prev_ll) < config.tolerance * (std::abs(prev_ll) + 1.0)) break;
        prev_ll = ll;
    }

    // Hard assignment.
    result.clusters.labels.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < k; ++c) {
            if (resp[i][c] > resp[i][best]) best = c;
        }
        result.clusters.labels[i] = static_cast<int>(best);
    }
    result.clusters.cluster_count = k;
    return result;
}

}  // namespace hawc
