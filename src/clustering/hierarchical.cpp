#include "clustering/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hawc {

namespace {

/// Condensed symmetric matrix of pairwise distances between active nodes.
class distance_matrix {
public:
    explicit distance_matrix(const point_cloud& cloud) : n_{cloud.size()} {
        data_.resize(n_ * n_);
        for (std::size_t i = 0; i < n_; ++i) {
            for (std::size_t j = i + 1; j < n_; ++j) {
                const double d = cloud[i].distance_to(cloud[j]);
                at(i, j) = d;
                at(j, i) = d;
            }
        }
    }

    double& at(std::size_t i, std::size_t j) { return data_[i * n_ + j]; }
    double get(std::size_t i, std::size_t j) const { return data_[i * n_ + j]; }

private:
    std::size_t n_;
    std::vector<double> data_;
};

double lance_williams(linkage link, double d_ki, double d_kj, std::size_t n_i, std::size_t n_j) {
    switch (link) {
        case linkage::single: return std::min(d_ki, d_kj);
        case linkage::complete: return std::max(d_ki, d_kj);
        case linkage::average: {
            const auto ni = static_cast<double>(n_i);
            const auto nj = static_cast<double>(n_j);
            return (ni * d_ki + nj * d_kj) / (ni + nj);
        }
    }
    return std::max(d_ki, d_kj);
}

}  // namespace

std::vector<dendrogram_merge> build_dendrogram(const point_cloud& cloud,
                                               const hierarchical_config& config) {
    const std::size_t n = cloud.size();
    HAWC_REQUIRE(n <= config.max_points,
                 "cloud too large for O(n^2) agglomeration; subsample first");
    std::vector<dendrogram_merge> merges;
    if (n < 2) return merges;

    const point_cloud scaled = config.metric.scale(cloud);
    distance_matrix dist{scaled};

    // active[i]: current dendrogram node id occupying slot i (or npos).
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> node_id(n);
    std::iota(node_id.begin(), node_id.end(), 0);
    std::vector<bool> active(n, true);
    std::vector<std::size_t> sizes(n, 1);

    std::vector<std::size_t> chain;
    chain.reserve(n);
    std::size_t remaining = n;

    auto nearest_of = [&](std::size_t i) {
        std::size_t best = npos;
        double best_d = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i || !active[j]) continue;
            const double d = dist.get(i, j);
            if (d < best_d) {
                best_d = d;
                best = j;
            }
        }
        return std::pair{best, best_d};
    };

    while (remaining > 1) {
        if (chain.empty()) {
            // Start the chain from any active slot.
            for (std::size_t i = 0; i < n; ++i) {
                if (active[i]) {
                    chain.push_back(i);
                    break;
                }
            }
        }
        while (true) {
            const std::size_t tip = chain.back();
            const auto [next, d] = nearest_of(tip);
            if (chain.size() >= 2 && next == chain[chain.size() - 2]) {
                // Reciprocal nearest neighbours: merge tip and next.
                const std::size_t a = tip;
                const std::size_t b = next;
                merges.push_back({node_id[a], node_id[b], d});
                // Merged cluster lives in slot a; update distances.
                for (std::size_t k = 0; k < n; ++k) {
                    if (!active[k] || k == a || k == b) continue;
                    const double updated = lance_williams(config.link, dist.get(k, a),
                                                          dist.get(k, b), sizes[a], sizes[b]);
                    dist.at(k, a) = updated;
                    dist.at(a, k) = updated;
                }
                sizes[a] += sizes[b];
                active[b] = false;
                node_id[a] = n + merges.size() - 1;
                --remaining;
                chain.pop_back();
                chain.pop_back();
                break;
            }
            chain.push_back(next);
        }
    }
    return merges;
}

namespace {

cluster_result cut_dendrogram(std::size_t n, const std::vector<dendrogram_merge>& merges,
                              const std::vector<bool>& apply) {
    // Union-find over leaves and merge nodes. Merge m creates node n+m;
    // children always reference nodes created by earlier log entries, and
    // for single/complete/average linkage a child's height never exceeds
    // its parent's, so a height cut can be applied in log order.
    std::vector<std::size_t> parent(n + merges.size());
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };

    for (std::size_t m = 0; m < merges.size(); ++m) {
        if (!apply[m]) continue;
        const std::size_t merged = n + m;
        parent[find(merges[m].left)] = merged;
        parent[find(merges[m].right)] = merged;
    }

    cluster_result result;
    result.labels.assign(n, noise_label);
    std::vector<int> root_to_label(n + merges.size(), -1);
    int next = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t root = find(i);
        if (root_to_label[root] < 0) root_to_label[root] = next++;
        result.labels[i] = root_to_label[root];
    }
    result.cluster_count = static_cast<std::size_t>(next);
    return result;
}

}  // namespace

cluster_result hierarchical_cluster(const point_cloud& cloud, const hierarchical_config& config) {
    if (cloud.empty()) return {};
    const auto merges = build_dendrogram(cloud, config);
    std::vector<bool> apply(merges.size());
    for (std::size_t m = 0; m < merges.size(); ++m) {
        apply[m] = merges[m].height <= config.cut_distance;
    }
    return cut_dendrogram(cloud.size(), merges, apply);
}

cluster_result hierarchical_cluster_k(const point_cloud& cloud, std::size_t k,
                                      const hierarchical_config& config) {
    if (cloud.empty()) return {};
    HAWC_REQUIRE(k >= 1, "k must be at least 1");
    const auto merges = build_dendrogram(cloud, config);
    // Applying the n-k cheapest merges leaves exactly k clusters.
    std::vector<std::size_t> order(merges.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return merges[a].height < merges[b].height;
    });
    std::vector<bool> apply(merges.size(), false);
    const std::size_t to_apply = cloud.size() > k ? cloud.size() - k : 0;
    for (std::size_t i = 0; i < std::min(to_apply, order.size()); ++i) apply[order[i]] = true;
    return cut_dendrogram(cloud.size(), merges, apply);
}

}  // namespace hawc
