#include "clustering/adaptive_eps.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hawc {

std::vector<double> knn_distance_curve(const point_cloud& cloud, std::size_t k,
                                       const cluster_metric& metric) {
    HAWC_REQUIRE(k >= 1, "k must be at least 1");
    std::vector<double> distances;
    if (cloud.size() <= k) return distances;

    const point_cloud scaled = metric.scale(cloud);
    const kd_tree tree{scaled};
    distances.reserve(scaled.size());
    for (const auto& p : scaled) {
        // k+1 because the query point itself is its own 0-th neighbour.
        const auto neighbors = tree.nearest(p, k + 1);
        distances.push_back(neighbors.back().distance);
    }
    std::sort(distances.begin(), distances.end());
    return distances;
}

std::size_t knee_index(std::span<const double> ascending) {
    HAWC_REQUIRE(ascending.size() >= 2, "knee needs at least two samples");
    std::size_t best = ascending.size() - 1;
    double best_ratio = -1.0;
    for (std::size_t i = 0; i + 1 < ascending.size(); ++i) {
        if (ascending[i] <= 0.0) continue;
        const double ratio = (ascending[i + 1] - ascending[i]) / ascending[i];
        if (ratio > best_ratio) {
            best_ratio = ratio;
            best = i;
        }
    }
    return best;
}

double adaptive_epsilon(const point_cloud& cloud, const adaptive_eps_config& config) {
    const auto curve = knn_distance_curve(cloud, config.k, config.metric);
    if (curve.size() < 2) return config.min_eps;

    // Restrict to the transition band (see adaptive_eps_config) and skip
    // the near-duplicate region below min_eps, where relative jumps are
    // measurement noise rather than the elbow.
    auto lo = static_cast<std::size_t>(config.band_lo * static_cast<double>(curve.size()));
    auto hi = static_cast<std::size_t>(config.band_hi * static_cast<double>(curve.size()));
    while (lo < curve.size() && curve[lo] < config.min_eps) ++lo;
    // Duplicate-heavy clouds (stuck sensor returns) can push `lo` past the
    // end of the curve; clamping with inverted bounds would read past it.
    if (lo + 2 > curve.size()) return std::clamp(curve.back(), config.min_eps, config.max_eps);
    hi = std::clamp<std::size_t>(hi, lo + 2, curve.size());

    const std::span<const double> band{curve.data() + lo, hi - lo};
    const double eps = band[knee_index(band)];
    return std::clamp(eps, config.min_eps, config.max_eps);
}

adaptive_clustering_result adaptive_dbscan(const point_cloud& cloud,
                                           const adaptive_eps_config& config) {
    adaptive_clustering_result result;
    if (cloud.empty()) return result;
    result.chosen_eps = adaptive_epsilon(cloud, config);

    dbscan_config run;
    run.eps = result.chosen_eps;
    run.min_points = config.min_points;
    run.metric = config.metric;
    result.clusters = dbscan(cloud, run);
    return result;
}

}  // namespace hawc
