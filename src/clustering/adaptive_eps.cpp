#include "clustering/adaptive_eps.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/metrics.hpp"

namespace hawc {

std::vector<double> knn_distance_curve(const point_cloud& cloud, std::size_t k,
                                       const cluster_metric& metric) {
    HAWC_REQUIRE(k >= 1, "k must be at least 1");
    std::vector<double> distances;
    if (cloud.size() <= k) return distances;

    const point_cloud scaled = metric.scale(cloud);
    const kd_tree tree{scaled};
    distances.resize(scaled.size());
    // One independent k-NN query per point: fan out over the pool with a
    // reused allocation-free scratch buffer per chunk. The sort below
    // erases chunk order, but even the unsorted curve is identical for
    // any thread count.
    global_pool().parallel_for(0, scaled.size(), 64, [&](std::size_t lo, std::size_t hi,
                                                         std::size_t /*slot*/) {
        std::vector<neighbor> neighbors;
        for (std::size_t i = lo; i < hi; ++i) {
            // k+1 because the query point itself is its own 0-th neighbour.
            tree.nearest_into(scaled[i], k + 1, neighbors);
            distances[i] = neighbors.back().distance;
        }
    });
    std::sort(distances.begin(), distances.end());
    return distances;
}

std::size_t knee_index(std::span<const double> ascending) {
    HAWC_REQUIRE(ascending.size() >= 2, "knee needs at least two samples");
    std::size_t best = ascending.size() - 1;
    double best_ratio = -1.0;
    for (std::size_t i = 0; i + 1 < ascending.size(); ++i) {
        if (ascending[i] <= 0.0) continue;
        const double ratio = (ascending[i + 1] - ascending[i]) / ascending[i];
        if (ratio > best_ratio) {
            best_ratio = ratio;
            best = i;
        }
    }
    return best;
}

std::vector<double> knn_distance_curve_scaled(const point_cloud& scaled_cloud,
                                              const kd_tree& tree, std::size_t k) {
    HAWC_REQUIRE(k >= 1, "k must be at least 1");
    std::vector<double> distances;
    if (scaled_cloud.size() <= k) return distances;
    distances.resize(scaled_cloud.size());
    global_pool().parallel_for(0, scaled_cloud.size(), 64, [&](std::size_t lo, std::size_t hi,
                                                               std::size_t /*slot*/) {
        std::vector<neighbor> neighbors;
        for (std::size_t i = lo; i < hi; ++i) {
            tree.nearest_into(scaled_cloud[i], k + 1, neighbors);
            distances[i] = neighbors.back().distance;
        }
    });
    std::sort(distances.begin(), distances.end());
    return distances;
}

double epsilon_from_curve(std::span<const double> curve, const adaptive_eps_config& config) {
    if (curve.size() < 2) return config.min_eps;

    // Restrict to the transition band (see adaptive_eps_config) and skip
    // the near-duplicate region below min_eps, where relative jumps are
    // measurement noise rather than the elbow.
    auto lo = static_cast<std::size_t>(config.band_lo * static_cast<double>(curve.size()));
    auto hi = static_cast<std::size_t>(config.band_hi * static_cast<double>(curve.size()));
    while (lo < curve.size() && curve[lo] < config.min_eps) ++lo;
    // Duplicate-heavy clouds (stuck sensor returns) can push `lo` past the
    // end of the curve; clamping with inverted bounds would read past it.
    if (lo + 2 > curve.size()) return std::clamp(curve.back(), config.min_eps, config.max_eps);
    hi = std::clamp<std::size_t>(hi, lo + 2, curve.size());

    const std::span<const double> band{curve.data() + lo, hi - lo};
    const double eps = band[knee_index(band)];
    return std::clamp(eps, config.min_eps, config.max_eps);
}

namespace {

void publish_eps(const telemetry_handle& telem, double eps) {
    if (telem.metrics == nullptr) return;
    telem.metrics
        ->make_gauge("hawc_adaptive_eps_last", "Most recent adaptively selected DBSCAN eps")
        .set(eps);
    telem.metrics
        ->make_counter("hawc_adaptive_eps_selections_total", "Adaptive eps selections run")
        .add(1);
}

}  // namespace

double adaptive_epsilon(const point_cloud& cloud, const adaptive_eps_config& config,
                        const telemetry_handle& telem) {
    telemetry::scoped_span span{telem, "eps_selection"};
    const auto curve = knn_distance_curve(cloud, config.k, config.metric);
    const double eps = epsilon_from_curve(curve, config);
    publish_eps(telem, eps);
    return eps;
}

double adaptive_epsilon_scaled(const point_cloud& scaled_cloud, const kd_tree& tree,
                               const adaptive_eps_config& config,
                               const telemetry_handle& telem) {
    telemetry::scoped_span span{telem, "eps_selection"};
    const auto curve = knn_distance_curve_scaled(scaled_cloud, tree, config.k);
    const double eps = epsilon_from_curve(curve, config);
    publish_eps(telem, eps);
    return eps;
}

adaptive_clustering_result adaptive_dbscan(const point_cloud& cloud,
                                           const adaptive_eps_config& config) {
    adaptive_clustering_result result;
    if (cloud.empty()) return result;
    // Scale the cloud and build the KD-tree once; eps selection and the
    // DBSCAN region queries share both.
    const point_cloud scaled = config.metric.scale(cloud);
    const kd_tree tree{scaled};
    result.chosen_eps = adaptive_epsilon_scaled(scaled, tree, config);
    result.clusters = dbscan_scaled(scaled, tree, result.chosen_eps, config.min_points);
    return result;
}

}  // namespace hawc
