#pragma once

// Lloyd's k-means with k-means++ seeding. One of the clustering methods
// the paper evaluated and rejected (Section IV): it assumes convex,
// similar-size clusters and needs k given up front — both poor fits for
// walkway LiDAR captures. Included as the corresponding ablation.

#include "clustering/cluster_result.hpp"
#include "common/rng.hpp"

namespace hawc {

struct kmeans_config {
    std::size_t k = 2;
    std::size_t max_iterations = 50;
    double tolerance = 1e-6;  // stop when centroids move less than this
    cluster_metric metric{};
};

struct kmeans_result {
    cluster_result clusters;
    std::vector<vec3> centroids;   // in metric space
    double inertia = 0.0;          // sum of squared distances to centroids
    std::size_t iterations = 0;
};

kmeans_result kmeans(const point_cloud& cloud, const kmeans_config& config, rng& random);

/// Choose k by the elbow of the inertia curve over k in [1, k_max]
/// (mirrors the paper's point that no principled k exists for scenes:
/// this heuristic is what one would have to resort to).
std::size_t kmeans_elbow_k(const point_cloud& cloud, std::size_t k_max,
                           const kmeans_config& base, rng& random);

}  // namespace hawc
