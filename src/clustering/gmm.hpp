#pragma once

// Gaussian mixture clustering via EM with diagonal covariances — the
// other parametric method the paper evaluated and rejected (Section IV):
// it imposes convex, ellipsoidal clusters on data that is neither.

#include "clustering/cluster_result.hpp"
#include "common/rng.hpp"

namespace hawc {

struct gmm_config {
    std::size_t components = 2;
    std::size_t max_iterations = 60;
    double tolerance = 1e-5;          // relative log-likelihood change
    double min_variance = 1e-4;       // variance floor per axis
    cluster_metric metric{};
};

struct gmm_component {
    vec3 mean;
    vec3 variance;   // diagonal covariance
    double weight = 0.0;
};

struct gmm_result {
    cluster_result clusters;          // hard assignment: argmax responsibility
    std::vector<gmm_component> components;
    double log_likelihood = 0.0;
    std::size_t iterations = 0;
};

gmm_result gmm_cluster(const point_cloud& cloud, const gmm_config& config, rng& random);

}  // namespace hawc
