#pragma once

// Common result type for all clustering algorithms in the framework.

#include <cstddef>
#include <vector>

#include "pointcloud/point_cloud.hpp"

namespace hawc {

/// Label assigned to points that belong to no cluster.
inline constexpr int noise_label = -1;

/// Per-point labels in [0, cluster_count) or noise_label.
struct cluster_result {
    std::vector<int> labels;
    std::size_t cluster_count = 0;

    /// Materialize each cluster as its own point cloud (noise dropped).
    std::vector<point_cloud> extract_clusters(const point_cloud& cloud) const;

    /// Number of points labelled as noise.
    std::size_t noise_count() const;

    /// Size of each cluster.
    std::vector<std::size_t> cluster_sizes() const;
};

/// The anisotropy compensation applied before clustering. A spinning
/// multi-channel sensor samples azimuth far more densely than elevation,
/// so Euclidean density is strongly direction-dependent; down-weighting z
/// makes within-target spacing near-isotropic (a standard 2.5D treatment
/// for pole-mounted spinning LiDAR). All clusterers and the adaptive-eps
/// selection operate in this scaled space; cluster membership is then
/// mapped back to the original points.
struct cluster_metric {
    double z_weight = 0.15;

    point_cloud scale(const point_cloud& cloud) const;
};

}  // namespace hawc
