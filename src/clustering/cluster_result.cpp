#include "clustering/cluster_result.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hawc {

std::vector<point_cloud> cluster_result::extract_clusters(const point_cloud& cloud) const {
    HAWC_REQUIRE(labels.size() == cloud.size(), "labels must match cloud size");
    std::vector<point_cloud> clusters(cluster_count);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const int label = labels[i];
        if (label == noise_label) continue;
        clusters[static_cast<std::size_t>(label)].push_back(cloud[i]);
    }
    return clusters;
}

std::size_t cluster_result::noise_count() const {
    return static_cast<std::size_t>(std::count(labels.begin(), labels.end(), noise_label));
}

std::vector<std::size_t> cluster_result::cluster_sizes() const {
    std::vector<std::size_t> sizes(cluster_count, 0);
    for (int label : labels) {
        if (label != noise_label) ++sizes[static_cast<std::size_t>(label)];
    }
    return sizes;
}

point_cloud cluster_metric::scale(const point_cloud& cloud) const {
    point_cloud out;
    out.reserve(cloud.size());
    for (const auto& p : cloud) out.push_back({p.x, p.y, p.z * z_weight});
    return out;
}

}  // namespace hawc
