#pragma once

// DBSCAN density-based clustering (Ester et al.), KD-tree accelerated.
// The paper's pipeline runs DBSCAN with a per-capture adaptive eps (see
// adaptive_eps.hpp); the fixed-eps variant here is also the Table IV
// baseline.

#include "clustering/cluster_result.hpp"
#include "pointcloud/kd_tree.hpp"
#include "telemetry/trace.hpp"

namespace hawc {

struct dbscan_config {
    double eps = 0.1;            // neighbourhood radius (in metric space)
    std::size_t min_points = 5;  // core-point density threshold (m in the paper)
    cluster_metric metric{};
};

/// Run DBSCAN over `cloud`. Returns per-point labels; border points join
/// the first core point that reaches them, noise points get noise_label.
/// With a telemetry handle the run emits a "dbscan" span and point/cluster
/// counters; the default handle is inert and costs a couple of null checks.
cluster_result dbscan(const point_cloud& cloud, const dbscan_config& config,
                      const telemetry_handle& telem = {});

/// DBSCAN over a cloud already in metric space with a prebuilt tree
/// (used by the adaptive path to reuse the k-NN tree).
cluster_result dbscan_scaled(const point_cloud& scaled_cloud, const kd_tree& tree, double eps,
                             std::size_t min_points, const telemetry_handle& telem = {});

}  // namespace hawc
