#pragma once

// The paper's adaptive clustering (Section IV): pick the DBSCAN eps for
// *each capture* by locating the elbow of its sorted k-NN-distance curve,
//   k_elbow = argmax_i (d[i+1] - d[i]) / d[i],    eps = d[k_elbow],
// then run DBSCAN with that eps.

#include <span>

#include "clustering/dbscan.hpp"

namespace hawc {

struct adaptive_eps_config {
    std::size_t k = 4;          // which nearest neighbour's distance to use
    double min_eps = 0.05;      // clamp: degenerate elbows on tiny clouds
    double max_eps = 2.0;
    std::size_t min_points = 5; // DBSCAN core threshold (m in the paper)
    cluster_metric metric{};

    // The elbow marks the transition from cluster points (small k-NN
    // distances) to noise points (large ones). Relative jumps deep inside
    // the dense bulk or between the last few extreme outliers are not
    // that transition, so the search is restricted to this quantile band
    // of the sorted curve.
    double band_lo = 0.60;
    double band_hi = 0.985;
};

/// Sorted (ascending) distance from every point to its k-th nearest
/// neighbour, computed in metric space. This is the curve of Figure 4a.
std::vector<double> knn_distance_curve(const point_cloud& cloud, std::size_t k,
                                       const cluster_metric& metric = {});

/// Same curve over a cloud already in metric space with a prebuilt tree
/// (lets eps selection and DBSCAN share one tree per frame).
std::vector<double> knn_distance_curve_scaled(const point_cloud& scaled_cloud,
                                              const kd_tree& tree, std::size_t k);

/// Eps from an already-computed ascending k-NN curve (band restriction +
/// elbow + clamp); the pieces of adaptive_epsilon for callers that cache
/// the curve.
double epsilon_from_curve(std::span<const double> curve, const adaptive_eps_config& config);

/// Index of the elbow of an ascending distance curve, using the paper's
/// maximum-relative-increase criterion. Zero-valued entries are skipped
/// (relative increase is undefined there).
std::size_t knee_index(std::span<const double> ascending);

/// The per-capture optimal eps: elbow of the k-NN curve, clamped to
/// [min_eps, max_eps]. Returns min_eps for clouds too small to estimate.
/// With a telemetry handle the selection emits an "eps_selection" span and
/// publishes the chosen eps as the hawc_adaptive_eps_last gauge.
double adaptive_epsilon(const point_cloud& cloud, const adaptive_eps_config& config = {},
                        const telemetry_handle& telem = {});

/// adaptive_epsilon over a pre-scaled cloud with a prebuilt tree.
double adaptive_epsilon_scaled(const point_cloud& scaled_cloud, const kd_tree& tree,
                               const adaptive_eps_config& config = {},
                               const telemetry_handle& telem = {});

/// The full adaptive clustering step: eps selection + DBSCAN.
struct adaptive_clustering_result {
    cluster_result clusters;
    double chosen_eps = 0.0;
};

adaptive_clustering_result adaptive_dbscan(const point_cloud& cloud,
                                           const adaptive_eps_config& config = {});

}  // namespace hawc
