#pragma once

// The end-to-end crowd counting pipeline (paper Figure 3): ingest ->
// cluster -> classify each cluster -> count the "Human" clusters.
// Generic over the classifier (HAWC-CC / PointNet-CC / AutoEncoder-CC /
// OC-SVM-CC, fp32 or int8) and over the clustering stage (adaptive
// DBSCAN by default; Table IV swaps in fixed-eps or hierarchical).

#include <functional>

#include "classifiers/classifier.hpp"
#include "common/timer.hpp"
#include "counting/metrics.hpp"
#include "dataset/builders.hpp"
#include "telemetry/trace.hpp"

namespace hawc {

/// Pluggable clustering stage: cloud (post-ingest) -> clusters.
using clusterer_fn = std::function<std::vector<point_cloud>(const point_cloud&)>;

/// Merged-cluster handling. In dense crowds DBSCAN can merge adjacent
/// pedestrians into one cluster; such a mega-cluster neither looks like
/// a single person to the classifier nor should count as one. When a
/// cluster is wider than any single person, the counter estimates how
/// many people could occupy its ground footprint (occupied xy grid cells
/// times cell area over a typical per-person footprint), splits it into
/// that many person-sized sub-clusters with k-means, and classifies each
/// sub-cluster individually. This is an extension over the paper's
/// described pipeline — required to keep Table VI counts near-linear at
/// 2+ people/m^2 — and can be disabled to recover plain
/// one-per-cluster counting.
struct multiplicity_config {
    bool enabled = true;
    double cell_size_m = 0.3;
    double person_footprint_m2 = 0.36;       // median single-person footprint
    double single_person_max_extent_m = 1.1;  // wider clusters get split
    std::size_t max_per_cluster = 15;
};

/// Estimated person capacity of an oversized cluster's footprint.
std::size_t estimate_multiplicity(const point_cloud& cluster, const multiplicity_config& config);

/// Per-capture timing breakdown in milliseconds.
struct stage_times {
    double ingest_ms = 0.0;
    double clustering_ms = 0.0;
    double classification_ms = 0.0;

    double total_ms() const { return ingest_ms + clustering_ms + classification_ms; }
};

struct count_result {
    std::size_t count = 0;           // clusters classified human
    std::size_t cluster_count = 0;   // clusters examined
    stage_times times;
};

/// Result of the classification half of the pipeline alone.
struct cluster_count_result {
    std::size_t count = 0;     // clusters (or sub-clusters) classified human
    std::size_t examined = 0;  // clusters meeting the minimum size
    bool truncated = false;    // classification stopped at the deadline
};

class crowd_counter {
public:
    /// `classifier` must outlive the counter. The default clustering
    /// stage is the paper's adaptive DBSCAN.
    crowd_counter(const capture_config& config, const human_classifier& classifier);

    /// Replace the clustering stage (Table IV ablations). The function
    /// receives the ingested cloud and must return the final clusters
    /// (minimum-size filtering is applied by the counter afterwards).
    void set_clusterer(clusterer_fn clusterer) { clusterer_ = std::move(clusterer); }

    /// Adjust or disable merged-cluster multiplicity estimation.
    void set_multiplicity(const multiplicity_config& config) { multiplicity_ = config; }
    const multiplicity_config& multiplicity() const { return multiplicity_; }

    /// Count people in one raw capture.
    count_result count(const point_cloud& raw, rng& random) const;

    /// Classification half of count(): size-filter, multiplicity-split and
    /// classify pre-built clusters. Used by count() and by the streaming
    /// runtime's frame supervisor, which clusters under its own fallback
    /// policy. When `time_budget` is armed and expires, the remaining
    /// clusters are skipped and the result is flagged truncated.
    ///
    /// When the classifier reports thread_safe(), clusters fan out across
    /// the global pool, each on its own forked rng stream; the streams
    /// and the reduction order are fixed before any worker runs, so the
    /// result is identical for every thread count (including one).
    /// Non-thread-safe classifiers keep the sequential single-stream loop.
    ///
    /// With a telemetry handle, each examined cluster emits a
    /// "classify_cluster" span under `telem.parent` (workers record into
    /// the shared sink) and per-cluster counters are bumped.
    cluster_count_result count_clusters(std::span<const point_cloud> clusters, rng& random,
                                        const deadline& time_budget = {},
                                        const telemetry_handle& telem = {}) const;

    /// Evaluate over a crowd dataset; collects MAE/MSE and latency.
    struct evaluation {
        counting_metrics metrics;
        double mean_latency_ms = 0.0;
        double stddev_latency_ms = 0.0;
    };
    evaluation evaluate(std::span<const crowd_sample> samples, rng& random) const;

    const capture_config& config() const { return config_; }
    std::string name() const { return classifier_->name() + "-CC"; }

private:
    /// People contributed by one size-qualified cluster: classify it, or
    /// for oversized clusters split and vote (see multiplicity_config).
    std::size_t count_one(const point_cloud& cluster, rng& random) const;

    capture_config config_;
    const human_classifier* classifier_;
    clusterer_fn clusterer_;  // empty = adaptive DBSCAN from config_
    multiplicity_config multiplicity_{};
};

/// Convenience factories for Table IV's alternative clustering stages.
clusterer_fn make_fixed_eps_clusterer(double eps, const capture_config& config);
clusterer_fn make_hierarchical_clusterer(double cut_distance, const capture_config& config);

}  // namespace hawc
