#pragma once

// Crowd-counting accuracy metrics, following the image-based crowd
// counting convention the paper adopts: MAE = mean |C - C_gt| and
// MSE = mean (C - C_gt)^2 over a sequence of captures.

#include <cstddef>
#include <vector>

namespace hawc {

struct counting_metrics {
    double mae = 0.0;
    double mse = 0.0;
    std::size_t samples = 0;
    double total_predicted = 0.0;
    double total_ground_truth = 0.0;

    /// Count accuracy as the paper reports it for Table VI:
    /// 1 - |total error| / total ground truth.
    double accuracy() const {
        if (total_ground_truth <= 0.0) return 0.0;
        const double err = total_predicted - total_ground_truth;
        return 1.0 - (err < 0.0 ? -err : err) / total_ground_truth;
    }
};

class counting_accumulator {
public:
    void add(double predicted, double ground_truth) {
        const double err = predicted - ground_truth;
        abs_sum_ += err < 0.0 ? -err : err;
        sq_sum_ += err * err;
        ++count_;
        predicted_sum_ += predicted;
        truth_sum_ += ground_truth;
    }

    counting_metrics metrics() const {
        counting_metrics m;
        if (count_ == 0) return m;
        m.mae = abs_sum_ / static_cast<double>(count_);
        m.mse = sq_sum_ / static_cast<double>(count_);
        m.samples = count_;
        m.total_predicted = predicted_sum_;
        m.total_ground_truth = truth_sum_;
        return m;
    }

private:
    double abs_sum_ = 0.0;
    double sq_sum_ = 0.0;
    double predicted_sum_ = 0.0;
    double truth_sum_ = 0.0;
    std::size_t count_ = 0;
};

}  // namespace hawc
