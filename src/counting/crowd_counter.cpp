#include "counting/crowd_counter.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "clustering/dbscan.hpp"
#include "clustering/kmeans.hpp"
#include "clustering/hierarchical.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "preprocess/ingest.hpp"
#include "telemetry/metrics.hpp"

namespace hawc {

namespace {

void publish_cluster_metrics(const telemetry_handle& telem, const cluster_count_result& r) {
    if (telem.metrics == nullptr) return;
    telem.metrics
        ->make_counter("hawc_clusters_examined_total", "Clusters put through the classifier")
        .add(r.examined);
    telem.metrics
        ->make_counter("hawc_clusters_human_total", "Clusters (incl. multiplicity) counted human")
        .add(r.count);
}

}  // namespace

crowd_counter::crowd_counter(const capture_config& config, const human_classifier& classifier)
    : config_{config}, classifier_{&classifier} {}

std::size_t estimate_multiplicity(const point_cloud& cluster, const multiplicity_config& config) {
    if (!config.enabled || cluster.empty()) return 1;

    const aabb box = cluster.bounds();
    const vec3 extent = box.size();
    if (std::max(extent.x, extent.y) <= config.single_person_max_extent_m) return 1;

    // Occupied ground footprint: unique xy grid cells times cell area.
    std::vector<std::pair<std::int64_t, std::int64_t>> cells;
    cells.reserve(cluster.size());
    for (const auto& p : cluster) {
        cells.emplace_back(static_cast<std::int64_t>(std::floor(p.x / config.cell_size_m)),
                           static_cast<std::int64_t>(std::floor(p.y / config.cell_size_m)));
    }
    std::sort(cells.begin(), cells.end());
    const auto unique_cells =
        static_cast<double>(std::unique(cells.begin(), cells.end()) - cells.begin());
    const double area = unique_cells * config.cell_size_m * config.cell_size_m;
    const auto people =
        static_cast<std::size_t>(std::lround(area / config.person_footprint_m2));
    return std::clamp<std::size_t>(people, 1, config.max_per_cluster);
}

count_result crowd_counter::count(const point_cloud& raw, rng& random) const {
    count_result result;
    stopwatch sw;

    const point_cloud ingested = ingest(raw, config_.roi, config_.ground);
    result.times.ingest_ms = sw.elapsed_ms();
    if (ingested.empty()) return result;

    sw.reset();
    std::vector<point_cloud> clusters;
    if (clusterer_) {
        clusters = clusterer_(ingested);
    } else {
        clusters = adaptive_dbscan(ingested, config_.clustering)
                       .clusters.extract_clusters(ingested);
    }
    result.times.clustering_ms = sw.elapsed_ms();

    sw.reset();
    const cluster_count_result counted = count_clusters(clusters, random);
    result.count = counted.count;
    result.cluster_count = counted.examined;
    result.times.classification_ms = sw.elapsed_ms();
    return result;
}

std::size_t crowd_counter::count_one(const point_cloud& cluster, rng& random) const {
    const std::size_t capacity = estimate_multiplicity(cluster, multiplicity_);
    if (capacity <= 1) {
        return classifier_->is_human(cluster, random) ? 1 : 0;
    }

    // Oversized cluster: split into person-sized parts and classify
    // each part on its own (a merged crowd looks nothing like the
    // single-person clusters the classifier was trained on). k-means
    // cuts people apart awkwardly, so fragment-level classification
    // under-counts; once the region is established to be
    // human-dominated (a majority of its parts classify human), the
    // footprint capacity is the better population estimate.
    kmeans_config split;
    split.k = capacity;
    split.metric = config_.clustering.metric;
    const auto parts = kmeans(cluster, split, random).clusters.extract_clusters(cluster);
    std::size_t examined = 0;
    std::size_t human_parts = 0;
    for (const auto& part : parts) {
        if (part.size() < config_.min_cluster_points) continue;
        ++examined;
        if (classifier_->is_human(part, random)) ++human_parts;
    }
    if (examined > 0 && 2 * human_parts >= examined) {
        return std::max(human_parts, capacity);
    }
    return human_parts;
}

cluster_count_result crowd_counter::count_clusters(std::span<const point_cloud> clusters,
                                                   rng& random, const deadline& time_budget,
                                                   const telemetry_handle& telem) const {
    cluster_count_result result;

    if (!classifier_->thread_safe()) {
        // Single-stream sequential loop: classifiers with mutable
        // per-call state (e.g. the chaos-injection wrapper) consume one
        // shared rng in cluster order, exactly as the pre-pool pipeline.
        for (const auto& cluster : clusters) {
            if (cluster.size() < config_.min_cluster_points) continue;
            if (time_budget.expired()) {
                result.truncated = true;
                break;
            }
            ++result.examined;
            telemetry::scoped_span span{telem, "classify_cluster"};
            result.count += count_one(cluster, random);
        }
        publish_cluster_metrics(telem, result);
        return result;
    }

    // Parallel fan-out. The forked streams are drawn sequentially before
    // any worker starts, so which rng a cluster sees never depends on
    // scheduling; with the deadline unarmed (or unexpired) the outcome is
    // byte-identical for every pool size. Deadline expiry skips whole
    // clusters, mirroring the sequential loop's skip-the-rest semantics,
    // and any skipped cluster flags the frame truncated.
    std::vector<const point_cloud*> eligible;
    eligible.reserve(clusters.size());
    for (const auto& cluster : clusters) {
        if (cluster.size() >= config_.min_cluster_points) eligible.push_back(&cluster);
    }
    std::vector<rng> streams;
    streams.reserve(eligible.size());
    for (std::size_t i = 0; i < eligible.size(); ++i) streams.push_back(random.fork());

    struct item_outcome {
        std::size_t count = 0;
        bool skipped = false;
    };
    std::vector<item_outcome> items(eligible.size());
    global_pool().parallel_for(0, eligible.size(), 1,
                               [&](std::size_t lo, std::size_t hi, std::size_t /*slot*/) {
                                   for (std::size_t i = lo; i < hi; ++i) {
                                       if (time_budget.expired()) {
                                           items[i].skipped = true;
                                           continue;
                                       }
                                       telemetry::scoped_span span{telem, "classify_cluster"};
                                       items[i].count = count_one(*eligible[i], streams[i]);
                                   }
                               });

    for (const auto& item : items) {
        if (item.skipped) {
            result.truncated = true;
            continue;
        }
        ++result.examined;
        result.count += item.count;
    }
    publish_cluster_metrics(telem, result);
    return result;
}

crowd_counter::evaluation crowd_counter::evaluate(std::span<const crowd_sample> samples,
                                                  rng& random) const {
    HAWC_REQUIRE(!samples.empty(), "cannot evaluate on an empty dataset");
    counting_accumulator acc;
    running_stats latency;
    for (const auto& sample : samples) {
        const count_result r = count(sample.raw, random);
        acc.add(static_cast<double>(r.count), static_cast<double>(sample.ground_truth));
        latency.add(r.times.total_ms());
    }
    evaluation e;
    e.metrics = acc.metrics();
    e.mean_latency_ms = latency.mean();
    e.stddev_latency_ms = latency.stddev();
    return e;
}

clusterer_fn make_fixed_eps_clusterer(double eps, const capture_config& config) {
    dbscan_config db;
    db.eps = eps;
    db.min_points = config.clustering.min_points;
    db.metric = config.clustering.metric;
    return [db](const point_cloud& cloud) {
        return dbscan(cloud, db).extract_clusters(cloud);
    };
}

clusterer_fn make_hierarchical_clusterer(double cut_distance, const capture_config& config) {
    hierarchical_config hc;
    hc.cut_distance = cut_distance;
    hc.metric = config.clustering.metric;
    return [hc](const point_cloud& cloud) {
        if (cloud.size() > hc.max_points) {
            // O(n^2) guard: deterministically stride-subsample large clouds.
            point_cloud reduced;
            const double stride =
                static_cast<double>(cloud.size()) / static_cast<double>(hc.max_points);
            for (std::size_t i = 0; i < hc.max_points; ++i) {
                reduced.push_back(cloud[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
            }
            return hierarchical_cluster(reduced, hc).extract_clusters(reduced);
        }
        return hierarchical_cluster(cloud, hc).extract_clusters(cloud);
    };
}

}  // namespace hawc
