// Perf snapshot for the parallel frame engine: times the hot kernels,
// the end-to-end single-frame count at several pool sizes, the fleet
// occupancy read path, the observability event pipeline, and the
// corpus-container codec/pack/stream-decode path, and emits one JSON
// document (BENCH_PR9.json via scripts/bench_snapshot.sh). The
// "baseline" block is the pre-engine measurement captured with the same
// methodology on the same container class, so current/baseline ratios
// are like-for-like. scripts/perf_gate.sh checks the threads_1 block
// against the ceilings — and the corpus_container block against the
// floors — in bench/perf_floor.json.
//
// Usage: bench_snapshot [thread_count...]   (default: 1 4)

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "classifiers/hawc_model.hpp"
#include "clustering/adaptive_eps.hpp"
#include "clustering/dbscan.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "counting/crowd_counter.hpp"
#include "features/height_features.hpp"
#include "fleet/occupancy.hpp"
#include "nn/activations.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/kernels/kernels.hpp"
#include "quant/calibrate.hpp"
#include "replay/codec.hpp"
#include "replay/container.hpp"

using namespace hawc;

namespace {

// Pre-engine numbers (sequential kernels, allocating KD queries, naive
// conv2d) from the seed revision, measured by this same harness.
struct metrics {
    double kd_nearest_k9_us = 0.0;
    double kd_radius_us = 0.0;
    double dbscan_8k_ms = 0.0;
    double height_variation_8k_ms = 0.0;
    double adaptive_eps_8k_ms = 0.0;
    double conv2d_us = 0.0;
    double qconv_us = 0.0;
    double qdense_us = 0.0;
    double e2e_count_8k_ms = 0.0;
};

// qdense was added to the harness in PR 4; its baseline is the serial
// run_dense measured just before that PR parallelized it (the other
// numbers are the seed revision's).
constexpr metrics baseline{3.4294, 1.0028, 11.221, 22.669, 16.181, 80.693, 145.371,
                           138.080, 66.232};

/// Synthetic walkway crowd: upright person blobs inside the default ROI
/// plus clutter, ~8000 points at the default arguments.
point_cloud crowd_cloud(std::size_t people, std::size_t points_per_person,
                        std::uint64_t seed) {
    rng r{seed};
    point_cloud cloud;
    for (std::size_t p = 0; p < people; ++p) {
        const double cx = r.uniform(13.0, 34.0);
        const double cy = r.uniform(-2.2, 2.2);
        for (std::size_t i = 0; i < points_per_person; ++i) {
            cloud.push_back({cx + r.normal(0.0, 0.12), cy + r.normal(0.0, 0.12),
                             -2.55 + r.uniform(0.0, 1.7)});
        }
    }
    for (std::size_t i = 0; i < people * points_per_person / 4; ++i) {
        cloud.push_back({r.uniform(12.0, 35.0), r.uniform(-2.5, 2.5),
                         -2.55 + r.uniform(0.0, 0.3)});
    }
    return cloud;
}

template <typename Fn>
double time_ms(std::size_t reps, Fn&& fn) {
    fn();  // warm-up
    stopwatch sw;
    for (std::size_t i = 0; i < reps; ++i) fn();
    return sw.elapsed_ms() / static_cast<double>(reps);
}

metrics measure() {
    metrics m;
    const point_cloud cloud = crowd_cloud(100, 64, 42);

    const kd_tree tree{cloud};
    rng qr{7};
    std::vector<vec3> queries;
    for (int i = 0; i < 512; ++i) queries.push_back(cloud[qr.uniform_index(cloud.size())]);

    std::vector<neighbor> neighbors;
    m.kd_nearest_k9_us = 1000.0 / 512.0 * time_ms(20, [&] {
        double acc = 0;
        for (const auto& q : queries) {
            tree.nearest_into(q, 9, neighbors);
            acc += neighbors.back().distance;
        }
        volatile double sink = acc;
        (void)sink;
    });

    std::vector<std::size_t> found;
    m.kd_radius_us = 1000.0 / 512.0 * time_ms(20, [&] {
        std::size_t acc = 0;
        for (const auto& q : queries) {
            tree.radius_search_into(q, 0.3, found);
            acc += found.size();
        }
        volatile std::size_t sink = acc;
        (void)sink;
    });

    dbscan_config db;
    db.eps = 0.3;
    m.dbscan_8k_ms = time_ms(5, [&] {
        volatile std::size_t sink = dbscan(cloud, db).cluster_count;
        (void)sink;
    });

    m.height_variation_8k_ms = time_ms(5, [&] {
        volatile double sink = height_variation(cloud, 8).back();
        (void)sink;
    });

    m.adaptive_eps_8k_ms = time_ms(5, [&] {
        volatile double sink = adaptive_epsilon(cloud);
        (void)sink;
    });

    {
        rng r{4};
        conv2d conv{7, 16, 3, padding::same, r};
        tensor input{{1, 18, 18, 7}};
        for (std::size_t i = 0; i < input.size(); ++i) {
            input[i] = static_cast<float>(r.normal());
        }
        m.conv2d_us = 1000.0 * time_ms(200, [&] {
            volatile float sink = conv.forward(input, false)[0];
            (void)sink;
        });
    }

    {
        rng r{5};
        sequential net;
        net.emplace<conv2d>(7, 16, 3, padding::same, r);
        tensor input{{1, 18, 18, 7}};
        for (std::size_t i = 0; i < input.size(); ++i) {
            input[i] = static_cast<float>(r.normal());
        }
        quantized_model qm = quantize_model(net, {input});
        m.qconv_us = 1000.0 * time_ms(200, [&] {
            volatile float sink = qm.forward(input)[0];
            (void)sink;
        });
    }

    {
        rng r{6};
        sequential net;
        net.emplace<dense>(512, 98, r);
        net.emplace<relu>();
        net.emplace<dense>(98, 2, r);
        tensor input{{8, 512}};
        for (std::size_t i = 0; i < input.size(); ++i) {
            input[i] = static_cast<float>(r.normal());
        }
        quantized_model qm = quantize_model(net, {input.slice_sample(0)});
        m.qdense_us = 1000.0 * time_ms(500, [&] {
            volatile float sink = qm.forward(input)[0];
            (void)sink;
        });
    }

    {
        rng r{1};
        object_pool pool;
        pool.add_cloud(crowd_cloud(4, 64, 9));
        hawc_model model{hawc_config{}, std::move(pool), r};  // untrained: same compute
        const crowd_counter counter{capture_config{}, model};
        rng cr{2};
        m.e2e_count_8k_ms = time_ms(3, [&] {
            volatile std::size_t sink = counter.count(cloud, cr).count;
            (void)sink;
        });
    }
    return m;
}

void print_metrics(const char* indent, const metrics& m) {
    std::printf("%s\"kd_nearest_k9_us_per_query\": %.4f,\n", indent, m.kd_nearest_k9_us);
    std::printf("%s\"kd_radius_us_per_query\": %.4f,\n", indent, m.kd_radius_us);
    std::printf("%s\"dbscan_8k_ms\": %.3f,\n", indent, m.dbscan_8k_ms);
    std::printf("%s\"height_variation_8k_ms\": %.3f,\n", indent, m.height_variation_8k_ms);
    std::printf("%s\"adaptive_eps_8k_ms\": %.3f,\n", indent, m.adaptive_eps_8k_ms);
    std::printf("%s\"conv2d_18x18_7to16_us\": %.3f,\n", indent, m.conv2d_us);
    std::printf("%s\"qconv_18x18_7to16_us\": %.3f,\n", indent, m.qconv_us);
    std::printf("%s\"qdense_b8_512to98to2_us\": %.3f,\n", indent, m.qdense_us);
    std::printf("%s\"e2e_count_8k_ms\": %.3f\n", indent, m.e2e_count_8k_ms);
}

// Fleet occupancy read path: how fast the seqlock board absorbs
// publishes and serves snapshots, alone and under reader contention.
struct fleet_metrics {
    double publish_us = 0.0;
    double read_us = 0.0;
    double cached_read_us = 0.0;
    double contended_reads_per_us = 0.0;
};

fleet_metrics measure_fleet(std::size_t poles) {
    fleet_metrics m;
    fleet::occupancy_board board{poles};
    fleet::occupancy_snapshot snap;
    snap.poles.resize(poles);
    for (std::size_t i = 0; i < poles; ++i) {
        snap.poles[i].count = i;
        snap.poles[i].epoch = 1;
        snap.poles[i].rung = fleet::pole_rung::live;
        snap.aggregate += i;
        ++snap.included;
    }
    board.publish(snap);

    constexpr std::size_t reps = 4096;
    m.publish_us = 1000.0 / reps * time_ms(10, [&] {
        for (std::size_t i = 0; i < reps; ++i) {
            ++snap.tick;
            board.publish(snap);
        }
    });
    m.read_us = 1000.0 / reps * time_ms(10, [&] {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < reps; ++i) acc += board.read().aggregate;
        volatile std::uint64_t sink = acc;
        (void)sink;
    });
    {
        fleet::occupancy_reader reader{board};
        m.cached_read_us = 1000.0 / reps * time_ms(10, [&] {
            std::uint64_t acc = 0;
            for (std::size_t i = 0; i < reps; ++i) acc += reader.snapshot().aggregate;
            volatile std::uint64_t sink = acc;
            (void)sink;
        });
    }
    {
        // Three readers hammering the board while the writer republishes:
        // the service-facing contended read rate.
        constexpr std::size_t reads_per_thread = 200000;
        stopwatch sw;
        std::vector<std::thread> readers;
        for (int t = 0; t < 3; ++t) {
            readers.emplace_back([&board] {
                std::uint64_t acc = 0;
                for (std::size_t i = 0; i < reads_per_thread; ++i) {
                    acc += board.read().aggregate;
                }
                volatile std::uint64_t sink = acc;
                (void)sink;
            });
        }
        std::atomic<bool> done{false};
        std::thread writer{[&] {
            while (!done.load(std::memory_order_relaxed)) {
                ++snap.tick;
                board.publish(snap);
            }
        }};
        for (auto& r : readers) r.join();
        const double elapsed_us = sw.elapsed_ms() * 1000.0;
        done.store(true);
        writer.join();
        m.contended_reads_per_us = 3.0 * static_cast<double>(reads_per_thread) / elapsed_us;
    }
    return m;
}

// Observability hot paths: what one event, one recorded frame, and one
// SLO sweep cost a pole that is otherwise busy counting people.
struct obs_metrics {
    double event_publish_us = 0.0;
    double event_suppressed_us = 0.0;
    double recorder_record_us = 0.0;
    double slo_evaluate_us = 0.0;
    double json_tail_256_us = 0.0;
};

obs_metrics measure_obs() {
    obs_metrics m;
    constexpr std::size_t reps = 4096;

    telemetry::event ev = telemetry::make_event(
        telemetry::event_kind::stage_failure, telemetry::event_severity::warning,
        "bench stage failure");
    ev.set_pole("pole-0");
    ev.add_field("streak", 3.0);

    {
        obs::event_log accepting{{.capacity = 1024, .tokens_per_tick = 0.0, .burst = 0.0}};
        m.event_publish_us = 1000.0 / reps * time_ms(10, [&] {
            for (std::size_t i = 0; i < reps; ++i) accepting.publish(ev);
        });
        m.json_tail_256_us = 1000.0 * time_ms(20, [&] {
            volatile std::size_t sink = obs::to_json_lines(accepting.tail(256)).size();
            (void)sink;
        });
    }
    {
        // One token ever: after the first accept, every publish takes the
        // token-bucket rejection path.
        obs::event_log suppressing{{.capacity = 64, .tokens_per_tick = 0.0, .burst = 1.0}};
        suppressing.publish(ev);
        m.event_suppressed_us = 1000.0 / reps * time_ms(10, [&] {
            for (std::size_t i = 0; i < reps; ++i) suppressing.publish(ev);
        });
    }
    {
        const point_cloud frame = crowd_cloud(100, 64, 42);
        obs::flight_recorder recorder{{.frame_capacity = 16}, "pole-0", 7};
        const supervisor_carry carry;
        frame_report report;
        report.count = 100;
        constexpr std::size_t frames = 256;
        std::vector<point_cloud> inbox;
        auto refill = [&] {
            inbox.assign(frames, frame);
        };
        refill();
        double best = 1e300;
        for (int pass = 0; pass < 10; ++pass) {
            stopwatch sw;
            for (std::size_t i = 0; i < frames; ++i) {
                recorder.record(i, 100, std::move(inbox[i]), carry, report);
            }
            best = std::min(best, sw.elapsed_ms());
            refill();
        }
        m.recorder_record_us = 1000.0 * best / static_cast<double>(frames);
    }
    {
        telemetry::metrics_registry reg;
        telemetry::counter& dropped = reg.make_counter("bench_dropped_total", "bench");
        telemetry::counter& frames = reg.make_counter("bench_frames_total", "bench");
        telemetry::gauge& stale = reg.make_gauge("bench_staleness", "bench");
        stale.set(2.0);
        obs::slo_engine engine{reg, reg,
                               obs::parse_slo_rules(
                                   "alert drop_burn if "
                                   "ratio(bench_dropped_total/bench_frames_total) > 0.05 "
                                   "window 8/32 resolve 8\n"
                                   "alert staleness if value(bench_staleness) > 6 for 3\n")};
        std::uint64_t tick = 0;
        m.slo_evaluate_us = 1000.0 / reps * time_ms(10, [&] {
            for (std::size_t i = 0; i < reps; ++i) {
                frames.add(10);
                dropped.add(i % 50 == 0 ? 1 : 0);
                engine.evaluate(tick++);
            }
        });
    }
    return m;
}

// The corpus-container path (replay/container): packing a recorded
// corpus into chunked compressed "HWCC" form and streaming it back out,
// plus the raw codec on the two canonical inputs — float32 point clouds
// (the honest, nearly-incompressible case the fleet actually records)
// and redundant text (the JSONL/trace best case postmortem bundles see).
struct container_metrics {
    double uncompressed_mb = 0.0;
    double ratio = 1.0;              // uncompressed / stored, cloud corpus
    double pack_mbps = 0.0;          // uncompressed MB/s through pack_corpus
    double stream_decode_mbps = 0.0; // uncompressed MB/s through a frame walk
    double codec_cloud_compress_mbps = 0.0;
    double codec_cloud_decompress_mbps = 0.0;
    double codec_text_compress_mbps = 0.0;
    double codec_text_decompress_mbps = 0.0;
    double codec_text_ratio = 1.0;
};

container_metrics measure_container() {
    container_metrics m;

    replay::frame_corpus corpus;
    corpus.name = "bench";
    corpus.base_seed = 42;
    for (std::size_t f = 0; f < 32; ++f) {
        replay::frame_record rec;
        rec.ground_truth = 100;
        rec.cloud = replay::round_to_recorded(crowd_cloud(100, 64, 42 + f));
        corpus.frames.push_back(std::move(rec));
    }

    std::string packed;
    m.pack_mbps = 0.0;
    {
        std::uint64_t uncompressed = 0;
        std::uint64_t stored = 0;
        const double pack_ms = time_ms(3, [&] {
            std::ostringstream out;
            replay::pack_corpus(out, corpus, {.frames_per_chunk = 8});
            packed = out.str();
        });
        std::istringstream in{packed};
        replay::container_reader reader{in};
        for (const replay::chunk_entry& chunk : reader.chunks()) {
            uncompressed += chunk.uncompressed_size;
            stored += chunk.stored_size;
        }
        m.uncompressed_mb = static_cast<double>(uncompressed) / 1.0e6;
        m.ratio = static_cast<double>(uncompressed) / static_cast<double>(stored);
        m.pack_mbps = m.uncompressed_mb / (pack_ms / 1000.0);
        const double walk_ms = time_ms(3, [&] {
            std::istringstream walk_in{packed};
            replay::container_reader walker{walk_in};
            std::size_t acc = 0;
            for (std::uint64_t f = 0; f < walker.frame_count(0); ++f) {
                acc += walker.frame(0, f).cloud.size();
            }
            volatile std::size_t sink = acc;
            (void)sink;
        });
        m.stream_decode_mbps = m.uncompressed_mb / (walk_ms / 1000.0);
    }

    const auto codec_rate = [](const std::vector<char>& input, double* compress_mbps,
                               double* decompress_mbps) {
        const double mb = static_cast<double>(input.size()) / 1.0e6;
        std::vector<char> out;
        const double c_ms = time_ms(5, [&] {
            replay::lz_compress_into(input.data(), input.size(), out);
        });
        *compress_mbps = mb / (c_ms / 1000.0);
        std::vector<char> round(input.size());
        const double d_ms = time_ms(5, [&] {
            replay::lz_decompress_into(out.data(), out.size(), round.data(), round.size());
        });
        *decompress_mbps = mb / (d_ms / 1000.0);
        return static_cast<double>(input.size()) / static_cast<double>(out.size());
    };

    {
        std::vector<char> cloud_bytes;
        for (const auto& frame : corpus.frames) {
            for (const vec3& p : frame.cloud) {
                const float xyz[3] = {static_cast<float>(p.x), static_cast<float>(p.y),
                                      static_cast<float>(p.z)};
                const auto* raw = reinterpret_cast<const char*>(xyz);
                cloud_bytes.insert(cloud_bytes.end(), raw, raw + sizeof(xyz));
            }
            if (cloud_bytes.size() > (std::size_t{8} << 20)) break;
        }
        codec_rate(cloud_bytes, &m.codec_cloud_compress_mbps,
                   &m.codec_cloud_decompress_mbps);
    }
    {
        std::string text;
        while (text.size() < (std::size_t{4} << 20)) {
            text += "{\"kind\":\"stage_failure\",\"pole\":\"pole-0\",\"streak\":3}\n";
        }
        const std::vector<char> text_bytes(text.begin(), text.end());
        m.codec_text_ratio = codec_rate(text_bytes, &m.codec_text_compress_mbps,
                                        &m.codec_text_decompress_mbps);
    }
    return m;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::size_t> thread_counts;
    for (int i = 1; i < argc; ++i) {
        const long parsed = std::strtol(argv[i], nullptr, 10);
        if (parsed >= 1) thread_counts.push_back(static_cast<std::size_t>(parsed));
    }
    if (thread_counts.empty()) thread_counts = {1, 4};

    std::printf("{\n");
    std::printf("  \"bench\": \"hot-kernel perf snapshot (incl. int8 conv/dense)\",\n");
    std::printf("  \"cloud_points\": %zu,\n", crowd_cloud(100, 64, 42).size());
    std::printf("  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
    std::printf("  \"kernel_isa\": \"%s\",\n", kernels::active_kernels().name);
    std::printf("  \"note\": \"thread-count sweeps above hardware_concurrency time-share "
                "cores and cannot show wall-clock parallel speedup\",\n");
    std::printf("  \"baseline_seed_sequential\": {\n");
    print_metrics("    ", baseline);
    std::printf("  },\n");

    std::printf("  \"current\": {\n");
    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
        set_global_thread_count(thread_counts[t]);
        const metrics m = measure();
        std::printf("    \"threads_%zu\": {\n", thread_counts[t]);
        print_metrics("      ", m);
        std::printf("    }%s\n", t + 1 < thread_counts.size() ? "," : "");
    }
    std::printf("  },\n");

    const fleet_metrics fm = measure_fleet(16);
    std::printf("  \"fleet_occupancy_16_poles\": {\n");
    std::printf("    \"publish_us\": %.4f,\n", fm.publish_us);
    std::printf("    \"read_us\": %.4f,\n", fm.read_us);
    std::printf("    \"cached_read_us\": %.4f,\n", fm.cached_read_us);
    std::printf("    \"contended_reads_per_us_3_readers\": %.2f\n",
                fm.contended_reads_per_us);
    std::printf("  },\n");

    const obs_metrics om = measure_obs();
    std::printf("  \"obs_event_pipeline\": {\n");
    std::printf("    \"event_publish_us\": %.4f,\n", om.event_publish_us);
    std::printf("    \"event_suppressed_us\": %.4f,\n", om.event_suppressed_us);
    std::printf("    \"recorder_record_us\": %.4f,\n", om.recorder_record_us);
    std::printf("    \"slo_evaluate_2_rules_us\": %.4f,\n", om.slo_evaluate_us);
    std::printf("    \"events_to_jsonl_tail256_us\": %.2f\n", om.json_tail_256_us);
    std::printf("  },\n");

    const container_metrics cm = measure_container();
    std::printf("  \"corpus_container\": {\n");
    std::printf("    \"uncompressed_mb\": %.2f,\n", cm.uncompressed_mb);
    std::printf("    \"cloud_corpus_ratio\": %.3f,\n", cm.ratio);
    std::printf("    \"pack_mbps\": %.1f,\n", cm.pack_mbps);
    std::printf("    \"stream_decode_mbps\": %.1f,\n", cm.stream_decode_mbps);
    std::printf("    \"codec_cloud_compress_mbps\": %.1f,\n", cm.codec_cloud_compress_mbps);
    std::printf("    \"codec_cloud_decompress_mbps\": %.1f,\n",
                cm.codec_cloud_decompress_mbps);
    std::printf("    \"codec_text_compress_mbps\": %.1f,\n", cm.codec_text_compress_mbps);
    std::printf("    \"codec_text_decompress_mbps\": %.1f,\n",
                cm.codec_text_decompress_mbps);
    std::printf("    \"codec_text_ratio\": %.1f\n", cm.codec_text_ratio);
    std::printf("  },\n");

    set_global_thread_count(thread_counts.front());
    const metrics single = measure();
    std::printf("  \"speedup_vs_baseline_at_threads_%zu\": {\n", thread_counts.front());
    std::printf("    \"kd_nearest_k9\": %.2f,\n", baseline.kd_nearest_k9_us / single.kd_nearest_k9_us);
    std::printf("    \"kd_radius\": %.2f,\n", baseline.kd_radius_us / single.kd_radius_us);
    std::printf("    \"dbscan_8k\": %.2f,\n", baseline.dbscan_8k_ms / single.dbscan_8k_ms);
    std::printf("    \"height_variation_8k\": %.2f,\n",
                baseline.height_variation_8k_ms / single.height_variation_8k_ms);
    std::printf("    \"adaptive_eps_8k\": %.2f,\n",
                baseline.adaptive_eps_8k_ms / single.adaptive_eps_8k_ms);
    std::printf("    \"conv2d\": %.2f,\n", baseline.conv2d_us / single.conv2d_us);
    std::printf("    \"qconv\": %.2f,\n", baseline.qconv_us / single.qconv_us);
    std::printf("    \"qdense\": %.2f,\n", baseline.qdense_us / single.qdense_us);
    std::printf("    \"e2e_count_8k\": %.2f\n", baseline.e2e_count_8k_ms / single.e2e_count_8k_ms);
    std::printf("  }\n");
    std::printf("}\n");
    return 0;
}
