// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// HAWC-CC pipeline: KD-tree queries (allocating and allocation-free),
// DBSCAN, projection, conv2d forward in fp32 and int8, and the
// end-to-end single-capture count. Kernels that fan out over the global
// pool take the thread count as their benchmark argument.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "classifiers/hawc_model.hpp"
#include "clustering/adaptive_eps.hpp"
#include "common/thread_pool.hpp"
#include "counting/crowd_counter.hpp"
#include "features/height_features.hpp"
#include "features/pipeline.hpp"
#include "nn/conv2d.hpp"
#include "preprocess/ingest.hpp"
#include "quant/calibrate.hpp"

namespace {

using namespace hawc;

point_cloud benchmark_cloud(std::size_t n) {
    rng r{42};
    point_cloud cloud;
    cloud.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.push_back({r.uniform(12.0, 35.0), r.uniform(-2.5, 2.5), r.uniform(-2.6, -1.0)});
    }
    return cloud;
}

void bm_kd_tree_build(benchmark::State& state) {
    const point_cloud cloud = benchmark_cloud(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        kd_tree tree{cloud};
        benchmark::DoNotOptimize(tree.size());
    }
}
BENCHMARK(bm_kd_tree_build)->Arg(500)->Arg(2000)->Arg(8000);

void bm_kd_tree_knn(benchmark::State& state) {
    const point_cloud cloud = benchmark_cloud(4000);
    const kd_tree tree{cloud};
    rng r{7};
    for (auto _ : state) {
        const auto nb = tree.nearest(cloud[r.uniform_index(cloud.size())], 8);
        benchmark::DoNotOptimize(nb.size());
    }
}
BENCHMARK(bm_kd_tree_knn);

void bm_kd_tree_knn_into(benchmark::State& state) {
    // Allocation-free variant: the reused buffer plateaus immediately
    // (k <= 16 additionally runs on the inline heap).
    const point_cloud cloud = benchmark_cloud(4000);
    const kd_tree tree{cloud};
    rng r{7};
    std::vector<neighbor> out;
    for (auto _ : state) {
        tree.nearest_into(cloud[r.uniform_index(cloud.size())], 8, out);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(bm_kd_tree_knn_into);

void bm_kd_tree_radius_into(benchmark::State& state) {
    const point_cloud cloud = benchmark_cloud(4000);
    const kd_tree tree{cloud};
    rng r{7};
    std::vector<std::size_t> found;
    for (auto _ : state) {
        tree.radius_search_into(cloud[r.uniform_index(cloud.size())], 0.3, found);
        benchmark::DoNotOptimize(found.size());
    }
}
BENCHMARK(bm_kd_tree_radius_into);

void bm_dbscan(benchmark::State& state) {
    // range(0): cloud size; range(1): pool lanes for the region-query phase.
    set_global_thread_count(static_cast<std::size_t>(state.range(1)));
    const point_cloud cloud = benchmark_cloud(static_cast<std::size_t>(state.range(0)));
    dbscan_config cfg;
    cfg.eps = 0.15;
    for (auto _ : state) {
        const auto result = dbscan(cloud, cfg);
        benchmark::DoNotOptimize(result.cluster_count);
    }
    set_global_thread_count(1);
}
BENCHMARK(bm_dbscan)->Args({500, 1})->Args({2000, 1})->Args({8000, 1})->Args({8000, 4});

void bm_adaptive_eps(benchmark::State& state) {
    set_global_thread_count(static_cast<std::size_t>(state.range(1)));
    const point_cloud cloud = benchmark_cloud(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(adaptive_epsilon(cloud));
    }
    set_global_thread_count(1);
}
BENCHMARK(bm_adaptive_eps)->Args({1000, 1})->Args({8000, 1})->Args({8000, 4});

void bm_height_variation(benchmark::State& state) {
    set_global_thread_count(static_cast<std::size_t>(state.range(1)));
    const point_cloud cloud = benchmark_cloud(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        const auto sigma = height_variation(cloud, 8);
        benchmark::DoNotOptimize(sigma.back());
    }
    set_global_thread_count(1);
}
BENCHMARK(bm_height_variation)->Args({8000, 1})->Args({8000, 4});

void bm_projection_hap(benchmark::State& state) {
    rng r{3};
    point_cloud cluster;
    for (int i = 0; i < 324; ++i) {
        cluster.push_back({20.0 + r.normal(0.0, 0.2), r.normal(0.0, 0.2),
                           -3.0 + r.uniform(0.2, 1.7)});
    }
    projection_config cfg;
    cfg.target_points = 324;
    for (auto _ : state) {
        const tensor t = project_cluster(cluster, cluster.centroid(), cfg);
        benchmark::DoNotOptimize(t.size());
    }
}
BENCHMARK(bm_projection_hap);

void bm_conv2d_forward(benchmark::State& state) {
    rng r{4};
    conv2d conv{7, 16, 3, padding::same, r};
    tensor input{{1, 18, 18, 7}};
    for (std::size_t i = 0; i < input.size(); ++i) {
        input[i] = static_cast<float>(r.normal());
    }
    for (auto _ : state) {
        const tensor out = conv.forward(input, false);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(bm_conv2d_forward);

void bm_qconv_forward(benchmark::State& state) {
    // int8 path of the same conv: im2col over (x - zp) int16 + integer GEMM.
    rng r{5};
    sequential net;
    net.emplace<conv2d>(7, 16, 3, padding::same, r);
    tensor input{{1, 18, 18, 7}};
    for (std::size_t i = 0; i < input.size(); ++i) {
        input[i] = static_cast<float>(r.normal());
    }
    quantized_model qm = quantize_model(net, {input});
    for (auto _ : state) {
        const tensor out = qm.forward(input);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(bm_qconv_forward);

void bm_e2e_count(benchmark::State& state) {
    // End-to-end single-capture count on a ~8k-point crowd; range(0) is
    // the pool size (clustering kernels + per-cluster classification fan
    // out when the classifier is thread-safe).
    set_global_thread_count(static_cast<std::size_t>(state.range(0)));
    rng scene{42};
    point_cloud cloud;
    for (std::size_t p = 0; p < 100; ++p) {
        const double cx = scene.uniform(13.0, 34.0);
        const double cy = scene.uniform(-2.2, 2.2);
        for (int i = 0; i < 64; ++i) {
            cloud.push_back({cx + scene.normal(0.0, 0.12), cy + scene.normal(0.0, 0.12),
                             -2.55 + scene.uniform(0.0, 1.7)});
        }
    }
    rng init{1};
    object_pool pool;
    pool.add_cloud(benchmark_cloud(256));
    hawc_model model{hawc_config{}, std::move(pool), init};  // untrained: same compute
    const crowd_counter counter{capture_config{}, model};
    rng r{2};
    for (auto _ : state) {
        const count_result res = counter.count(cloud, r);
        benchmark::DoNotOptimize(res.count);
    }
    set_global_thread_count(1);
}
BENCHMARK(bm_e2e_count)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void bm_ingest(benchmark::State& state) {
    const point_cloud cloud = benchmark_cloud(20000);
    for (auto _ : state) {
        const point_cloud out = ingest(cloud);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(bm_ingest);

}  // namespace

BENCHMARK_MAIN();
