// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// HAWC-CC pipeline: KD-tree queries, DBSCAN, projection, conv2d forward
// in fp32 and int8, and the end-to-end single-capture count.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "clustering/adaptive_eps.hpp"
#include "features/pipeline.hpp"
#include "nn/conv2d.hpp"
#include "preprocess/ingest.hpp"

namespace {

using namespace hawc;

point_cloud benchmark_cloud(std::size_t n) {
    rng r{42};
    point_cloud cloud;
    cloud.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.push_back({r.uniform(12.0, 35.0), r.uniform(-2.5, 2.5), r.uniform(-2.6, -1.0)});
    }
    return cloud;
}

void bm_kd_tree_build(benchmark::State& state) {
    const point_cloud cloud = benchmark_cloud(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        kd_tree tree{cloud};
        benchmark::DoNotOptimize(tree.size());
    }
}
BENCHMARK(bm_kd_tree_build)->Arg(500)->Arg(2000)->Arg(8000);

void bm_kd_tree_knn(benchmark::State& state) {
    const point_cloud cloud = benchmark_cloud(4000);
    const kd_tree tree{cloud};
    rng r{7};
    for (auto _ : state) {
        const auto nb = tree.nearest(cloud[r.uniform_index(cloud.size())], 8);
        benchmark::DoNotOptimize(nb.size());
    }
}
BENCHMARK(bm_kd_tree_knn);

void bm_dbscan(benchmark::State& state) {
    const point_cloud cloud = benchmark_cloud(static_cast<std::size_t>(state.range(0)));
    dbscan_config cfg;
    cfg.eps = 0.15;
    for (auto _ : state) {
        const auto result = dbscan(cloud, cfg);
        benchmark::DoNotOptimize(result.cluster_count);
    }
}
BENCHMARK(bm_dbscan)->Arg(500)->Arg(2000);

void bm_adaptive_eps(benchmark::State& state) {
    const point_cloud cloud = benchmark_cloud(1000);
    for (auto _ : state) {
        benchmark::DoNotOptimize(adaptive_epsilon(cloud));
    }
}
BENCHMARK(bm_adaptive_eps);

void bm_projection_hap(benchmark::State& state) {
    rng r{3};
    point_cloud cluster;
    for (int i = 0; i < 324; ++i) {
        cluster.push_back({20.0 + r.normal(0.0, 0.2), r.normal(0.0, 0.2),
                           -3.0 + r.uniform(0.2, 1.7)});
    }
    projection_config cfg;
    cfg.target_points = 324;
    for (auto _ : state) {
        const tensor t = project_cluster(cluster, cluster.centroid(), cfg);
        benchmark::DoNotOptimize(t.size());
    }
}
BENCHMARK(bm_projection_hap);

void bm_conv2d_forward(benchmark::State& state) {
    rng r{4};
    conv2d conv{7, 16, 3, padding::same, r};
    tensor input{{1, 18, 18, 7}};
    for (std::size_t i = 0; i < input.size(); ++i) {
        input[i] = static_cast<float>(r.normal());
    }
    for (auto _ : state) {
        const tensor out = conv.forward(input, false);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(bm_conv2d_forward);

void bm_ingest(benchmark::State& state) {
    const point_cloud cloud = benchmark_cloud(20000);
    for (auto _ : state) {
        const point_cloud out = ingest(cloud);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(bm_ingest);

}  // namespace

BENCHMARK_MAIN();
