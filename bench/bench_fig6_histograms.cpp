// Figure 6: coordinate histograms of "Human" vs "Object" data on the
// x, y, and z axes — the evidence that object-data padding does not
// masquerade as human structure.

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace hawc;
using namespace hawc::bench;

namespace {

void print_axis(const char* axis, double lo, double hi, const cluster_dataset& data,
                auto pick) {
    histogram human{lo, hi, 16};
    histogram object{lo, hi, 16};
    for (std::size_t i = 0; i < data.size(); ++i) {
        auto& h = data.labels[i] == label_human ? human : object;
        for (const auto& p : data.clusters[i]) h.add(pick(p));
    }
    std::cout << "Axis " << axis << " (left: Human, right: Object)\n";
    const auto hr = human.ascii_rows(24);
    const auto orr = object.ascii_rows(24);
    for (std::size_t i = 0; i < hr.size(); ++i) {
        std::cout << "  " << hr[i] << "\n        | " << orr[i] << "\n";
    }
    std::cout << "\n";
}

}  // namespace

int main() {
    print_header("Figure 6", "Per-axis coordinate histograms of Human vs Object clusters");

    auto ds = standard_dataset();
    print_axis("x", 12.0, 35.0, ds.train, [](const vec3& p) { return p.x; });
    print_axis("y", -2.5, 2.5, ds.train, [](const vec3& p) { return p.y; });
    print_axis("z", -3.0, -0.5, ds.train, [](const vec3& p) { return p.z; });

    // Quantified separation: mean z of human points sits above objects'
    // (people have mass between knee and head height).
    running_stats human_z;
    running_stats object_z;
    for (std::size_t i = 0; i < ds.train.size(); ++i) {
        auto& s = ds.train.labels[i] == label_human ? human_z : object_z;
        for (const auto& p : ds.train.clusters[i]) s.add(p.z);
    }
    std::cout << "mean z: human " << text_table::num(human_z.mean(), 3) << ", object "
              << text_table::num(object_z.mean(), 3) << "\n";

    print_paper_note(
        "the paper's Figure 6 shows visibly distinct x/y/z histograms for the "
        "two classes, justifying noise-controlled up-sampling. Expected shape: "
        "human z mass concentrated in the torso band; objects' z lower and more "
        "ground-hugging.");
    return 0;
}
