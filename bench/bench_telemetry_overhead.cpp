// Telemetry overhead on clean frames: the supervisor now records every
// frame into its metrics registry (lock-free atomics), and optionally
// into a trace sink (one short critical section per span). This bench
// runs the same clean captures through a supervisor with tracing
// disabled (null sink — the metrics hot path alone) and one with a trace
// sink installed, and gates the full-telemetry cost at <= 2% per frame.
//
// Timing uses min-of-passes: the minimum over several identical passes
// is the least noisy estimator of the true cost on a shared machine.

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "runtime/supervisor.hpp"
#include "sim/trajectory.hpp"
#include "telemetry/telemetry.hpp"

using namespace hawc;

int main() {
    bench::print_header("Telemetry overhead",
                        "frame_supervisor: null sink vs trace sink on clean frames");

    single_person_dataset_config ds_cfg;
    ds_cfg.human_samples = 40;
    ds_cfg.object_samples = 40;
    ds_cfg.capture.min_cluster_points = 20;
    const single_person_dataset ds = build_single_person_dataset(ds_cfg);

    rng random{7};
    hawc_config model_cfg;
    model_cfg.features.upsample.target_points = ds.target_points;
    model_cfg.features.projection.target_points = ds.target_points;
    const hawc_model model{model_cfg, ds.pool, random};

    capture_config capture;
    capture.min_cluster_points = 20;
    supervisor_config sup_cfg;
    sup_cfg.capture = capture;

    frame_supervisor baseline{sup_cfg, model};   // tracing disabled (null sink)
    frame_supervisor traced{sup_cfg, model};     // full span tree per frame
    telemetry::trace_sink sink{16384};
    traced.set_trace_sink(&sink);

    // Identical clean frames for both supervisors.
    const std::size_t frames = bench::scaled(80, 16);
    const scanner sensor{capture.sensor};
    rng traffic_rng{2025};
    const traffic_schedule traffic{traffic_rng, 600.0, /*arrivals_per_minute=*/12.0};
    std::vector<point_cloud> captures;
    captures.reserve(frames);
    for (std::size_t i = 0; i < frames; ++i) {
        const double t = 5.0 + static_cast<double>(i) * 4.5;
        const scene frame = traffic.scene_at(t, traffic_rng);
        captures.push_back(sensor.scan(frame.primitives(), traffic_rng, capture.scan).to_cloud());
    }

    auto run = [&](frame_supervisor& sup) {
        rng r{11};
        std::size_t total = 0;
        for (const auto& c : captures) total += sup.process(c, r).count;
        return total;
    };

    // Warm-up, then interleaved timed passes (interleaving cancels any
    // slow machine-wide drift between the two configurations).
    run(baseline);
    run(traced);
    const std::size_t passes = 5;
    double baseline_ms = 1e300;
    double traced_ms = 1e300;
    std::size_t baseline_total = 0;
    std::size_t traced_total = 0;
    for (std::size_t p = 0; p < passes; ++p) {
        stopwatch sw;
        baseline_total = run(baseline);
        baseline_ms = std::min(baseline_ms, sw.elapsed_ms());
        sw.reset();
        traced_total = run(traced);
        traced_ms = std::min(traced_ms, sw.elapsed_ms());
    }

    const double overhead_pct = 100.0 * (traced_ms - baseline_ms) / baseline_ms;

    text_table table{{"Configuration", "Frames", "Best pass (ms)", "Per frame (ms)", "Count"}};
    table.add_row({"null sink (metrics only)", std::to_string(frames),
                   text_table::num(baseline_ms),
                   text_table::num(baseline_ms / static_cast<double>(frames)),
                   std::to_string(baseline_total)});
    table.add_row({"trace sink installed", std::to_string(frames),
                   text_table::num(traced_ms),
                   text_table::num(traced_ms / static_cast<double>(frames)),
                   std::to_string(traced_total)});
    table.print(std::cout);

    // Sanity: identical inputs and seeds must count identically, and the
    // traced run must have recorded a span tree.
    if (baseline_total != traced_total) {
        std::cout << "\nFAIL: counts diverged under tracing (" << baseline_total << " vs "
                  << traced_total << ")\n";
        return 1;
    }
    if (sink.recorded() == 0) {
        std::cout << "\nFAIL: trace sink recorded no spans\n";
        return 1;
    }

    std::cout << "\nTelemetry overhead on clean frames: " << text_table::num(overhead_pct)
              << "% (budget: <= 2%)\n"
              << "Spans recorded: " << sink.recorded() << "\n";
    return overhead_pct <= 2.0 ? 0 : 1;
}
