// Figure 8: (a) test-accuracy progression over training for HAWC,
// PointNet, and AutoEncoder; (b) robustness to limited training data
// (fractions from 100% down to 0.1%).
//
// Paper: (b) HAWC holds 90.29% at 0.1% of the training data, PointNet
// falls to 75.82%, AutoEncoder collapses to 12.44%.

#include "bench_common.hpp"

using namespace hawc;
using namespace hawc::bench;

int main() {
    print_header("Figure 8",
                 "Training curves and robustness to limited training data");

    auto ds = standard_dataset();

    // ---- (a) training curves ----
    std::cout << "Figure 8a: test accuracy per epoch\n";
    {
        rng r{7};
        hawc_model model{standard_hawc_config(ds), ds.pool, r};
        std::cerr << "[bench] HAWC training curve...\n";
        const auto reports = model.train(ds.train, &ds.test, r);
        std::cout << "  HAWC:       ";
        for (const auto& e : reports) std::cout << text_table::num(e.test_accuracy, 3) << " ";
        std::cout << "\n";
    }
    {
        rng r{13};
        pointnet_model model{standard_pointnet_config(ds), ds.pool, r};
        std::cerr << "[bench] PointNet training curve...\n";
        const auto reports = model.train(ds.train, &ds.test, r);
        std::cout << "  PointNet:   ";
        for (const auto& e : reports) std::cout << text_table::num(e.test_accuracy, 3) << " ";
        std::cout << "\n";
    }
    {
        rng r{11};
        autoencoder_model model{standard_autoencoder_config(), r};
        std::cerr << "[bench] AutoEncoder training curve...\n";
        const auto reports = model.train(ds.train, &ds.test, r);
        std::cout << "  AutoEncoder:";
        for (const auto& e : reports) std::cout << " " << text_table::num(e.test_accuracy, 3);
        std::cout << "\n";
    }

    // ---- (b) limited training data ----
    const double fractions[] = {1.0, 0.5, 0.1, 0.05, 0.01, 0.005};
    text_table table{{"Training fraction", "HAWC (%)", "PointNet (%)", "AutoEncoder (%)"}};

    for (const double fraction : fractions) {
        rng split_rng{555};
        labelled_dataset dummy;  // fraction applies to clusters, handled below

        // Build the fractional cluster dataset (stratified).
        cluster_dataset subset;
        {
            std::vector<std::size_t> by_class[2];
            for (std::size_t i = 0; i < ds.train.size(); ++i) {
                by_class[ds.train.labels[i]].push_back(i);
            }
            for (auto& members : by_class) {
                for (std::size_t i = members.size(); i > 1; --i) {
                    std::swap(members[i - 1], members[split_rng.uniform_index(i)]);
                }
                const auto keep = std::max<std::size_t>(
                    2, static_cast<std::size_t>(fraction * static_cast<double>(members.size()) +
                                                0.5));
                for (std::size_t i = 0; i < std::min(keep, members.size()); ++i) {
                    subset.add(ds.train.clusters[members[i]], ds.train.labels[members[i]]);
                }
            }
        }
        std::cerr << "[bench] fraction " << fraction << " -> " << subset.size()
                  << " training samples\n";

        double hawc_acc = 0.0;
        double pn_acc = 0.0;
        double ae_acc = 0.0;
        {
            rng r{7};
            hawc_config cfg = standard_hawc_config(ds);
            // Small subsets need more passes to see equivalent updates.
            if (fraction < 0.2) cfg.training.epochs *= 3;
            hawc_model model{cfg, ds.pool, r};
            model.train(subset, nullptr, r);
            hawc_acc = model.evaluate(ds.test, r).accuracy;
        }
        {
            rng r{13};
            pointnet_config cfg = standard_pointnet_config(ds);
            if (fraction < 0.2) cfg.training.epochs *= 3;
            pointnet_model model{cfg, ds.pool, r};
            model.train(subset, nullptr, r);
            pn_acc = model.evaluate(ds.test, r).accuracy;
        }
        {
            rng r{11};
            autoencoder_model model{standard_autoencoder_config(), r};
            model.train(subset, nullptr, r);
            ae_acc = model.evaluate(ds.test).accuracy;
        }
        table.add_row({text_table::num(100.0 * fraction, 1) + "%",
                       text_table::num(100.0 * hawc_acc),
                       text_table::num(100.0 * pn_acc), text_table::num(100.0 * ae_acc)});
        (void)dummy;
    }

    std::cout << "\nFigure 8b: accuracy vs training-set fraction\n";
    table.print(std::cout);
    print_paper_note(
        "at 0.1% training data the paper reports HAWC 90.29%, PointNet 75.82%, "
        "AutoEncoder 12.44%. Expected shape: HAWC degrades most gracefully as "
        "data shrinks; the AutoEncoder baseline collapses first.");
    return 0;
}
