// Figure 10: pole-compartment temperature vs weather over the summer
// window 2023-06-24 .. 2023-07-11 (thermal simulation; see DESIGN.md).
//
// Paper: pole max 57.81 degC, min 21.00, mean 41.95; offset vs weather
// ~10 degC at peak heat and < 5 degC in cool periods; the Coral's
// recommended 0-50 degC range is exceeded at peaks without failures.

#include "bench_common.hpp"
#include "deploy/thermal.hpp"

using namespace hawc;
using namespace hawc::bench;

int main() {
    print_header("Figure 10", "Pole vs weather temperature, 18 summer days");

    const thermal_series series = simulate_pole_temperature();
    const running_stats pole = series.pole_stats();
    const running_stats weather = series.weather_stats();

    text_table table{{"Series", "Min (degC)", "Mean (degC)", "Max (degC)"}};
    table.add_row({"Pole compartment", text_table::num(pole.min()),
                   text_table::num(pole.mean()), text_table::num(pole.max())});
    table.add_row({"Weather", text_table::num(weather.min()), text_table::num(weather.mean()),
                   text_table::num(weather.max())});
    table.print(std::cout);

    std::cout << "\nmean pole-minus-weather offset: peak hours "
              << text_table::num(series.mean_peak_offset_c()) << " degC, night "
              << text_table::num(series.mean_night_offset_c()) << " degC\n";
    std::cout << "fraction of samples above the Coral's 50 degC limit: "
              << text_table::num(100.0 * series.fraction_above(50.0)) << "%\n";
    std::cout << "samples: " << series.samples.size() << " (every 1.7 min, "
              << text_table::num(static_cast<double>(series.samples.size()) / 18.0, 0)
              << "/day)\n";

    // Daily profile sketch: mean pole temperature per 2-hour band.
    std::cout << "\nmean pole temperature by time of day:\n";
    for (int band = 0; band < 12; ++band) {
        running_stats s;
        for (const auto& sample : series.samples) {
            const double hour = std::fmod(sample.time_hours, 24.0);
            if (hour >= band * 2.0 && hour < band * 2.0 + 2.0) s.add(sample.pole_c);
        }
        std::cout << "  " << band * 2 << ":00-" << band * 2 + 2
                  << ":00  " << text_table::num(s.mean(), 1) << "  "
                  << std::string(static_cast<std::size_t>(s.mean()), '#') << "\n";
    }

    print_paper_note(
        "pole max 57.81 / min 21.00 / mean 41.95 degC; ~10 degC above weather at "
        "peak heat, < 5 degC when cool; operation continued above the Coral's "
        "50 degC rating. Expected shape: same statistics and a clear diurnal "
        "cycle peaking mid-afternoon.");
    return 0;
}
