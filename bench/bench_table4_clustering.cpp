// Table IV: crowd-counting accuracy of HAWC-CC with the proposed
// adaptive clustering vs fixed-eps DBSCAN (eps in {0.1..0.9}) and
// hierarchical clustering.
//
// Paper: adaptive MAE 0.38 / MSE 0.53; fixed eps 0.1 -> 1.56 MSE ...;
// hierarchical MAE 134.7 / MSE 28236 (catastrophic overcounting).

#include "bench_common.hpp"

using namespace hawc;
using namespace hawc::bench;

int main() {
    print_header("Table IV",
                 "HAWC-CC accuracy with adaptive vs fixed-eps vs hierarchical clustering");

    auto ds = standard_dataset();
    rng r{7};
    hawc_model model = train_standard_hawc(ds, r);

    const auto crowd_cfg = standard_crowd_config();
    const auto crowd = standard_crowd_dataset();

    text_table table{{"Method", "MAE", "MSE"}};

    auto evaluate_with = [&](const std::string& name, clusterer_fn clusterer) {
        crowd_counter counter{crowd_cfg.capture, model};
        if (clusterer) counter.set_clusterer(std::move(clusterer));
        // Isolate the clustering stage: the merged-cluster splitter (a
        // repo extension, DESIGN.md §6) compensates for clustering
        // mistakes and would mask exactly the differences this ablation
        // measures. The paper's pipeline counts one per cluster.
        multiplicity_config no_split;
        no_split.enabled = false;
        counter.set_multiplicity(no_split);
        rng eval_rng{31};
        std::cerr << "[bench] evaluating " << name << "...\n";
        const auto eval = counter.evaluate(crowd, eval_rng);
        table.add_row({name, text_table::num(eval.metrics.mae),
                       text_table::num(eval.metrics.mse)});
        return eval.metrics;
    };

    for (double eps : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        evaluate_with("Fixed eps " + text_table::num(eps, 1),
                      make_fixed_eps_clusterer(eps, crowd_cfg.capture));
    }
    evaluate_with("Hierarchical (complete, cut 0.8)",
                  make_hierarchical_clusterer(0.8, crowd_cfg.capture));
    evaluate_with("Adaptive (ours)", {});

    table.print(std::cout);
    print_paper_note(
        "adaptive 0.38/0.53 beats every fixed eps (best fixed: 0.5 at 0.40 MAE) "
        "and hierarchical fails outright (134.7/28236). Expected shape: adaptive "
        "lowest MAE/MSE; extreme eps values degrade sharply; hierarchical worst.");
    return 0;
}
