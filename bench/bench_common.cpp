#include "bench_common.hpp"

#include <cstdlib>

namespace hawc::bench {

bool fast_mode() {
    const char* env = std::getenv("HAWC_BENCH_FAST");
    return env != nullptr && std::string{env} == "1";
}

std::size_t scaled(std::size_t full, std::size_t fast) { return fast_mode() ? fast : full; }

single_person_dataset standard_dataset() {
    single_person_dataset_config cfg;
    cfg.human_samples = scaled(1200, 250);
    cfg.object_samples = scaled(1200, 250);
    cfg.capture.min_cluster_points = 20;
    cfg.seed = 42;
    std::cerr << "[bench] building single-person dataset (" << cfg.human_samples << "+"
              << cfg.object_samples << " samples)...\n";
    stopwatch sw;
    auto ds = build_single_person_dataset(cfg);
    std::cerr << "[bench] dataset ready in " << static_cast<int>(sw.elapsed_ms() / 1000.0)
              << " s: train=" << ds.train.size() << " test=" << ds.test.size()
              << " N'_max=" << ds.target_points << "\n";
    return ds;
}

crowd_dataset_config standard_crowd_config() {
    crowd_dataset_config cfg;
    cfg.scenes = scaled(80, 25);
    cfg.max_people = 8;
    cfg.max_objects = 4;
    cfg.seed = 99;
    cfg.capture.min_cluster_points = 20;
    return cfg;
}

std::vector<crowd_sample> standard_crowd_dataset() {
    const auto cfg = standard_crowd_config();
    std::cerr << "[bench] building crowd dataset (" << cfg.scenes << " scenes)...\n";
    return build_crowd_dataset(cfg);
}

hawc_config standard_hawc_config(const single_person_dataset& ds) {
    hawc_config cfg;
    cfg.features.upsample.target_points = ds.target_points;
    cfg.features.projection.target_points = ds.target_points;
    cfg.training.epochs = scaled(20, 8);
    cfg.training.lr_decay_factor = 0.3;
    cfg.training.lr_decay_period = 8;
    return cfg;
}

pointnet_config standard_pointnet_config(const single_person_dataset& ds) {
    pointnet_config cfg;
    cfg.upsample.target_points = ds.target_points;
    cfg.training.epochs = scaled(16, 5);
    cfg.training.lr_decay_factor = 0.3;
    cfg.training.lr_decay_period = 8;
    return cfg;
}

autoencoder_config standard_autoencoder_config() {
    autoencoder_config cfg;
    cfg.reconstruction_epochs = scaled(20, 8);
    cfg.head_training.epochs = scaled(20, 8);
    return cfg;
}

hawc_model train_standard_hawc(const single_person_dataset& ds, rng& random) {
    hawc_model model{standard_hawc_config(ds), ds.pool, random};
    std::cerr << "[bench] training HAWC (" << model.parameter_count() << " params)...\n";
    stopwatch sw;
    model.train(ds.train, nullptr, random);
    std::cerr << "[bench] HAWC trained in " << static_cast<int>(sw.elapsed_ms() / 1000.0)
              << " s\n";
    return model;
}

void print_header(const std::string& table_name, const std::string& description) {
    std::cout << "\n==== " << table_name << " ====\n"
              << description << "\n";
    if (fast_mode()) std::cout << "(HAWC_BENCH_FAST=1: reduced configuration)\n";
    std::cout << "\n";
}

void print_paper_note(const std::string& note) { std::cout << "paper: " << note << "\n"; }

}  // namespace hawc::bench
