// Table V: end-to-end crowd counting — accuracy (MAE/MSE, fp32 and int8)
// and speed for HAWC-CC vs PointNet-CC, AutoEncoder-CC, and OC-SVM-CC.
//
// Paper: HAWC-CC 0.38/0.53 fp32, 0.41/0.56 int8, 17.42 +/- 0.46 ms;
// PointNet-CC 0.63/0.98 fp32, 1.56/3.30 int8, 26.25 ms; AutoEncoder-CC
// 0.43/0.78 fp32, 0.73/1.57 int8, 46.98 ms; OC-SVM-CC 2.84/5.55 fp32.

#include "bench_common.hpp"

using namespace hawc;
using namespace hawc::bench;

namespace {

struct row {
    std::string name;
    counting_metrics fp32;
    counting_metrics int8;
    bool has_int8 = false;
    double speed_mean = 0.0;
    double speed_sd = 0.0;
};

}  // namespace

int main() {
    print_header("Table V",
                 "Crowd counting accuracy and end-to-end speed for all frameworks");

    auto ds = standard_dataset();
    const auto crowd_cfg = standard_crowd_config();
    const auto crowd = standard_crowd_dataset();
    std::vector<row> rows;

    auto run_pipeline = [&](const human_classifier& classifier) {
        crowd_counter counter{crowd_cfg.capture, classifier};
        rng eval_rng{31};
        return counter.evaluate(crowd, eval_rng);
    };

    // ---- OC-SVM-CC (fp32 only) ----
    {
        std::cerr << "[bench] OC-SVM-CC...\n";
        ocsvm_model model;
        model.train(ds.train);
        row entry;
        entry.name = "OC-SVM-CC";
        const auto eval = run_pipeline(model);
        entry.fp32 = eval.metrics;
        entry.speed_mean = eval.mean_latency_ms;
        entry.speed_sd = eval.stddev_latency_ms;
        rows.push_back(entry);
    }

    // ---- AutoEncoder-CC ----
    {
        std::cerr << "[bench] AutoEncoder-CC...\n";
        rng r{11};
        autoencoder_model model{standard_autoencoder_config(), r};
        model.train(ds.train, nullptr, r);
        row entry;
        entry.name = "AutoEncoder-CC";
        const auto eval = run_pipeline(model);
        entry.fp32 = eval.metrics;
        entry.speed_mean = eval.mean_latency_ms;
        entry.speed_sd = eval.stddev_latency_ms;

        auto q = model.quantize(ds.train, r);
        quantized_classifier int8{std::move(q),
                                  [&model](const point_cloud& c, rng&) {
                                      return model.featurize_cluster(c);
                                  },
                                  "AutoEncoder-int8"};
        entry.int8 = run_pipeline(int8).metrics;
        entry.has_int8 = true;
        rows.push_back(entry);
    }

    // ---- PointNet-CC ----
    {
        std::cerr << "[bench] PointNet-CC...\n";
        rng r{13};
        pointnet_model model{standard_pointnet_config(ds), ds.pool, r};
        model.train(ds.train, nullptr, r);
        row entry;
        entry.name = "PointNet-CC";
        const auto eval = run_pipeline(model);
        entry.fp32 = eval.metrics;
        entry.speed_mean = eval.mean_latency_ms;
        entry.speed_sd = eval.stddev_latency_ms;

        auto q = model.quantize(ds.train, r);
        quantized_classifier int8{std::move(q),
                                  [&model](const point_cloud& c, rng& rr) {
                                      return model.featurize_cluster(c, rr);
                                  },
                                  "PointNet-int8"};
        entry.int8 = run_pipeline(int8).metrics;
        entry.has_int8 = true;
        rows.push_back(entry);
    }

    // ---- HAWC-CC ----
    {
        rng r{7};
        hawc_model model = train_standard_hawc(ds, r);
        row entry;
        entry.name = "HAWC-CC (Ours)";
        const auto eval = run_pipeline(model);
        entry.fp32 = eval.metrics;
        entry.speed_mean = eval.mean_latency_ms;
        entry.speed_sd = eval.stddev_latency_ms;

        auto q = model.quantize(ds.train, r);
        const auto& extractor = model.extractor();
        quantized_classifier int8{std::move(q),
                                  [&extractor](const point_cloud& c, rng& rr) {
                                      return extractor.extract(c, rr);
                                  },
                                  "HAWC-int8"};
        entry.int8 = run_pipeline(int8).metrics;
        entry.has_int8 = true;
        rows.push_back(entry);
    }

    text_table table{{"Framework", "FP32 MAE", "FP32 MSE", "Int8 MAE", "Int8 MSE",
                      "MAE Diff", "MSE Diff", "Speed (ms, host)"}};
    for (const auto& e : rows) {
        if (e.has_int8) {
            table.add_row({e.name, text_table::num(e.fp32.mae), text_table::num(e.fp32.mse),
                           text_table::num(e.int8.mae), text_table::num(e.int8.mse),
                           text_table::num(e.int8.mae - e.fp32.mae),
                           text_table::num(e.int8.mse - e.fp32.mse),
                           text_table::pm(e.speed_mean, e.speed_sd)});
        } else {
            table.add_row({e.name, text_table::num(e.fp32.mae), text_table::num(e.fp32.mse),
                           "-", "-", "-", "-", text_table::pm(e.speed_mean, e.speed_sd)});
        }
    }
    table.print(std::cout);
    print_paper_note(
        "HAWC-CC 0.38/0.53 (int8 0.41/0.56, +0.03/+0.03) at 17.42 ms; PointNet-CC "
        "0.63/0.98 (int8 1.56/3.30) at 26.25 ms; AutoEncoder-CC 0.43/0.78 (int8 "
        "0.73/1.57) at 46.98 ms; OC-SVM-CC 2.84/5.55. Expected shape: HAWC-CC "
        "lowest MAE/MSE in both precisions, smallest int8 degradation, fastest "
        "end-to-end. Host speeds differ in absolute terms from the Jetson; see "
        "bench_table2 for device cost-model projections.");
    return 0;
}
