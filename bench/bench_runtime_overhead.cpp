// Supervisor overhead on clean frames: the fault-tolerant runtime wraps
// the same ingest -> adaptive clustering -> classify -> count pipeline
// the bare crowd_counter runs, adding sanitization, duplicate removal,
// plausibility checks, watchdog polls, and health accounting. This bench
// measures what that armor costs on healthy captures — the acceptance
// budget is <= 5% over the unsupervised pipeline.

#include <vector>

#include "bench_common.hpp"
#include "runtime/supervisor.hpp"
#include "sim/trajectory.hpp"

using namespace hawc;

int main() {
    bench::print_header("Runtime overhead",
                        "frame_supervisor vs bare crowd_counter on clean frames");

    // An untrained fp32 HAWC keeps the classification stage realistic
    // (full feature extraction + forward pass) without minutes of
    // training; both pipelines share the exact same instance.
    single_person_dataset_config ds_cfg;
    ds_cfg.human_samples = 40;
    ds_cfg.object_samples = 40;
    ds_cfg.capture.min_cluster_points = 20;
    const single_person_dataset ds = build_single_person_dataset(ds_cfg);

    rng random{7};
    hawc_config model_cfg;
    model_cfg.features.upsample.target_points = ds.target_points;
    model_cfg.features.projection.target_points = ds.target_points;
    const hawc_model model{model_cfg, ds.pool, random};

    capture_config capture;
    capture.min_cluster_points = 20;
    const crowd_counter bare{capture, model};

    supervisor_config sup_cfg;
    sup_cfg.capture = capture;
    frame_supervisor supervised{sup_cfg, model};

    // Pre-generate identical clean frames so both pipelines see the
    // exact same inputs and the comparison is frame-for-frame.
    const std::size_t frames = bench::scaled(120, 20);
    const scanner sensor{capture.sensor};
    rng traffic_rng{2025};
    const traffic_schedule traffic{traffic_rng, 600.0, /*arrivals_per_minute=*/12.0};
    std::vector<point_cloud> captures;
    captures.reserve(frames);
    for (std::size_t i = 0; i < frames; ++i) {
        const double t = 5.0 + static_cast<double>(i) * 4.5;
        const scene frame = traffic.scene_at(t, traffic_rng);
        captures.push_back(sensor.scan(frame.primitives(), traffic_rng, capture.scan).to_cloud());
    }

    // Warm-up pass (allocator, caches), then timed passes. Counting uses
    // a fixed-seed rng per pass so both pipelines draw identical samples.
    auto run_bare = [&] {
        rng r{11};
        std::size_t total = 0;
        for (const auto& c : captures) total += bare.count(c, r).count;
        return total;
    };
    auto run_supervised = [&] {
        rng r{11};
        std::size_t total = 0;
        for (const auto& c : captures) total += supervised.process(c, r).count;
        return total;
    };
    run_bare();
    run_supervised();

    stopwatch sw;
    const std::size_t bare_total = run_bare();
    const double bare_ms = sw.elapsed_ms();
    sw.reset();
    const std::size_t supervised_total = run_supervised();
    const double supervised_ms = sw.elapsed_ms();

    const double overhead_pct = 100.0 * (supervised_ms - bare_ms) / bare_ms;

    text_table table{{"Pipeline", "Frames", "Total (ms)", "Per frame (ms)", "Count"}};
    table.add_row({"crowd_counter (bare)", std::to_string(frames),
                   text_table::num(bare_ms),
                   text_table::num(bare_ms / static_cast<double>(frames)),
                   std::to_string(bare_total)});
    table.add_row({"frame_supervisor", std::to_string(frames),
                   text_table::num(supervised_ms),
                   text_table::num(supervised_ms / static_cast<double>(frames)),
                   std::to_string(supervised_total)});
    table.print(std::cout);

    std::cout << "\nSupervisor overhead on clean frames: " << text_table::num(overhead_pct)
              << "% (budget: <= 5%)\n";
    const auto& health = supervised.health();
    std::cout << "Clean-run health check: " << health.frames_ok << "/"
              << health.frames_total << " frames ok, "
              << (health.accounted() ? "all accounted" : "ACCOUNTING BROKEN") << "\n";
    return overhead_pct <= 5.0 ? 0 : 1;
}
