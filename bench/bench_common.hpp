#pragma once

// Shared infrastructure for the paper-reproduction benches: standard
// dataset/model configurations, a fast-mode switch, and helpers to print
// measured-vs-paper rows.
//
// Every bench is deterministic given its seeds. Set HAWC_BENCH_FAST=1 to
// run a reduced configuration (smaller dataset, fewer epochs) when
// iterating; the shipped numbers in EXPERIMENTS.md use the default.

#include <iostream>
#include <string>

#include "classifiers/autoencoder_model.hpp"
#include "classifiers/hawc_model.hpp"
#include "classifiers/ocsvm_model.hpp"
#include "classifiers/pointnet_model.hpp"
#include "classifiers/quantized_classifier.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "counting/crowd_counter.hpp"

namespace hawc::bench {

/// True when HAWC_BENCH_FAST=1 is set in the environment.
bool fast_mode();

/// Scale a count down in fast mode.
std::size_t scaled(std::size_t full, std::size_t fast);

/// The standard single-person dataset every accuracy bench trains on.
single_person_dataset standard_dataset();

/// The standard crowd dataset (Tables IV and V).
std::vector<crowd_sample> standard_crowd_dataset();
crowd_dataset_config standard_crowd_config();

/// Standard model configurations bound to a dataset's N'_max.
hawc_config standard_hawc_config(const single_person_dataset& ds);
pointnet_config standard_pointnet_config(const single_person_dataset& ds);
autoencoder_config standard_autoencoder_config();

/// Train the standard HAWC (prints progress to stderr).
hawc_model train_standard_hawc(const single_person_dataset& ds, rng& random);

/// Print a section header so bench output is self-describing.
void print_header(const std::string& table_name, const std::string& description);

/// Print a "paper vs measured" note line.
void print_paper_note(const std::string& note);

}  // namespace hawc::bench
