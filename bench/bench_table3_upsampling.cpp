// Table III: noise-controlled up-sampling ablation — object-data
// sampling vs Gaussian sampling with sigma in {3, 5, 7}.
//
// Paper: object data 99.97%; Gaussian sigma=3 99.70 (-0.27),
// sigma=5 94.30 (-5.67), sigma=7 97.15 (-2.82).

#include "bench_common.hpp"

using namespace hawc;
using namespace hawc::bench;

int main() {
    print_header("Table III",
                 "Up-sampling ablation: object-data padding vs Gaussian padding");

    auto ds = standard_dataset();

    struct variant {
        std::string name;
        sampling_method method;
        double sigma;
    };
    const variant variants[] = {
        {"Object data", sampling_method::object_data, 0.0},
        {"Gaussian s=3", sampling_method::gaussian, 3.0},
        {"Gaussian s=5", sampling_method::gaussian, 5.0},
        {"Gaussian s=7", sampling_method::gaussian, 7.0},
    };

    text_table table{{"Sampling Method", "Test Accuracy (%)", "Difference (%)"}};
    double baseline = 0.0;
    for (const auto& v : variants) {
        rng r{7};
        hawc_config cfg = standard_hawc_config(ds);
        cfg.features.upsample.method = v.method;
        cfg.features.upsample.gaussian_sigma = v.sigma;
        hawc_model model{cfg, ds.pool, r};
        std::cerr << "[bench] training HAWC with " << v.name << "...\n";
        model.train(ds.train, nullptr, r);
        const double accuracy = model.evaluate(ds.test, r).accuracy;
        if (v.method == sampling_method::object_data) baseline = accuracy;
        table.add_row({v.name, text_table::num(100.0 * accuracy),
                       text_table::num(100.0 * (accuracy - baseline))});
    }

    table.print(std::cout);
    print_paper_note(
        "object data 99.97; Gaussian 99.70/94.30/97.15 for sigma 3/5/7. Expected "
        "shape: object-data sampling at least matches the best Gaussian variant.");
    return 0;
}
