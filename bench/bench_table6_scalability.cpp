// Table VI + Figure 11: scalability of HAWC-CC to synthetic high-density
// crowds (20 to 250 pedestrians composited from single-person clusters
// with +-5 m offsets, objects at a 1:2 ratio).
//
// Paper: MAE grows from 0.47 (20 people) to 5.90 (250 people); accuracy
// stays at 97.6%+ even in the high-density setting, beating RGB-based
// SOTA (Su 90.9%, Liu 77.1%, Hao 86.27%).

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace hawc;
using namespace hawc::bench;

int main() {
    print_header("Table VI / Figure 11",
                 "Scalability: density scenes composited from single-person clusters");

    auto ds = standard_dataset();
    rng r{7};
    hawc_model model = train_standard_hawc(ds, r);

    // Donor clusters from the training split (labels known by class).
    std::vector<point_cloud> humans;
    std::vector<point_cloud> objects;
    for (std::size_t i = 0; i < ds.train.size(); ++i) {
        (ds.train.labels[i] == label_human ? humans : objects)
            .push_back(ds.train.clusters[i]);
    }

    // Counting config for the composited area: offsets push people to
    // 7..40 m from the sensor (paper Sec. VII-D), so the ROI widens.
    capture_config count_cfg = standard_crowd_config().capture;
    count_cfg.roi.x_min_m = 5.0;
    count_cfg.roi.x_max_m = 42.0;
    count_cfg.roi.y_min_m = -10.0;
    count_cfg.roi.y_max_m = 10.0;
    const crowd_counter counter{count_cfg, model};

    const std::size_t runs = scaled(3, 2);
    const std::size_t samples_per_run = scaled(10, 4);

    text_table table{{"# Pedestrians", "Density", "MAE", "MSE", "Total (K)", "Counted (K)",
                      "Accuracy (%)"}};

    const std::size_t pedestrian_counts[] = {20, 30, 40, 50, 60, 70, 80, 90, 100, 150, 200, 250};
    bool printed_offsets = false;
    for (const std::size_t people : pedestrian_counts) {
        running_stats mae_runs;
        running_stats mse_runs;
        running_stats counted_runs;
        std::cerr << "[bench] density level " << people << " pedestrians...\n";
        for (std::size_t run = 0; run < runs; ++run) {
            counting_accumulator acc;
            rng run_rng{1000 + people * 10 + run};
            for (std::size_t s = 0; s < samples_per_run; ++s) {
                density_scene_config cfg;
                cfg.pedestrians = people;
                const density_scene scene =
                    build_density_scene(cfg, humans, objects, run_rng);
                const auto result = counter.count(scene.cloud, run_rng);
                acc.add(static_cast<double>(result.count),
                        static_cast<double>(scene.ground_truth));

                // Figure 11: offset distribution for one representative scene.
                if (!printed_offsets && people == 100) {
                    histogram hx{-5.0, 5.0, 10};
                    hx.add(scene.x_offsets);
                    std::cout << "Figure 11: x-offset distribution, 100-pedestrian scene:\n";
                    for (const auto& row : hx.ascii_rows(40)) std::cout << "  " << row << "\n";
                    std::cout << "\n";
                    printed_offsets = true;
                }
            }
            const auto m = acc.metrics();
            mae_runs.add(m.mae);
            mse_runs.add(m.mse);
            counted_runs.add(m.total_predicted / 1000.0);
        }
        const double total_k =
            static_cast<double>(people * samples_per_run) / 1000.0;
        const double accuracy =
            100.0 * (1.0 - std::abs(counted_runs.mean() - total_k) / total_k);
        table.add_row({std::to_string(people), density_level_name(people),
                       text_table::pm(mae_runs.mean(), mae_runs.stddev(), 3),
                       text_table::pm(mse_runs.mean(), mse_runs.stddev(), 3),
                       text_table::num(total_k, 3),
                       text_table::pm(counted_runs.mean(), counted_runs.stddev(), 3),
                       text_table::num(accuracy)});
    }

    table.print(std::cout);
    print_paper_note(
        "MAE 0.473 at 20 pedestrians rising to 5.903 at 250; count accuracy "
        "97.64% in the high-density setting vs RGB SOTA: Su et al. 90.9%, Liu et "
        "al. 77.1%, Hao et al. 86.27%. Expected shape: MAE/MSE grow smoothly "
        "with density while relative accuracy stays high (> 90%).");
    return 0;
}
