// Extension ablation (paper Section IV discussion): the clustering
// methods the authors evaluated and rejected before settling on
// density-based clustering — k-means (elbow-selected k) and Gaussian
// mixtures — run through the full HAWC-CC pipeline, alongside the three
// linkage variants of hierarchical clustering. Table IV covers the
// headline comparison; this bench fills in the rest of the design-space
// discussion with measurements.

#include "bench_common.hpp"
#include "clustering/gmm.hpp"
#include "clustering/hierarchical.hpp"
#include "clustering/kmeans.hpp"

using namespace hawc;
using namespace hawc::bench;

int main() {
    print_header("Ablation (extension)",
                 "Every clustering family from the paper's Section IV discussion "
                 "inside HAWC-CC");

    auto ds = standard_dataset();
    rng r{7};
    hawc_model model = train_standard_hawc(ds, r);

    const auto crowd_cfg = standard_crowd_config();
    const auto crowd = standard_crowd_dataset();

    text_table table{{"Clustering stage", "MAE", "MSE", "Latency (ms)"}};

    auto evaluate_with = [&](const std::string& name, clusterer_fn clusterer) {
        crowd_counter counter{crowd_cfg.capture, model};
        if (clusterer) counter.set_clusterer(std::move(clusterer));
        // One count per cluster: isolate the clustering stage from the
        // merged-cluster splitter, as in bench_table4.
        multiplicity_config no_split;
        no_split.enabled = false;
        counter.set_multiplicity(no_split);
        rng eval_rng{31};
        std::cerr << "[bench] evaluating " << name << "...\n";
        const auto eval = counter.evaluate(crowd, eval_rng);
        table.add_row({name, text_table::num(eval.metrics.mae),
                       text_table::num(eval.metrics.mse),
                       text_table::num(eval.mean_latency_ms)});
    };

    evaluate_with("Adaptive DBSCAN (ours)", {});

    // k-means with elbow-selected k: the "what if we had to guess k"
    // strategy the paper dismisses.
    {
        const capture_config cap = crowd_cfg.capture;
        evaluate_with("k-means (elbow k)", [cap](const point_cloud& cloud) {
            rng local{17};
            kmeans_config cfg;
            cfg.metric = cap.clustering.metric;
            const std::size_t k = kmeans_elbow_k(cloud, 12, cfg, local);
            cfg.k = k;
            return kmeans(cloud, cfg, local).clusters.extract_clusters(cloud);
        });
    }

    // Gaussian mixture with the same elbow-style component count.
    {
        const capture_config cap = crowd_cfg.capture;
        evaluate_with("Gaussian mixture (elbow k)", [cap](const point_cloud& cloud) {
            rng local{19};
            kmeans_config probe;
            probe.metric = cap.clustering.metric;
            const std::size_t k = kmeans_elbow_k(cloud, 12, probe, local);
            gmm_config cfg;
            cfg.components = k;
            cfg.metric = cap.clustering.metric;
            return gmm_cluster(cloud, cfg, local).clusters.extract_clusters(cloud);
        });
    }

    // Hierarchical linkage sweep.
    for (const auto& [name, link] :
         {std::pair{"Hierarchical single 0.15", linkage::single},
          std::pair{"Hierarchical complete 0.8", linkage::complete},
          std::pair{"Hierarchical average 0.4", linkage::average}}) {
        const capture_config cap = crowd_cfg.capture;
        const double cut = link == linkage::single   ? 0.15
                           : link == linkage::complete ? 0.8
                                                       : 0.4;
        const linkage link_copy = link;
        evaluate_with(name, [cap, cut, link_copy](const point_cloud& cloud) {
            hierarchical_config cfg;
            cfg.link = link_copy;
            cfg.cut_distance = cut;
            cfg.metric = cap.clustering.metric;
            point_cloud working = cloud;
            if (working.size() > cfg.max_points) {
                point_cloud reduced;
                const double stride = static_cast<double>(working.size()) /
                                      static_cast<double>(cfg.max_points);
                for (std::size_t i = 0; i < cfg.max_points; ++i) {
                    reduced.push_back(
                        working[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
                }
                working = std::move(reduced);
            }
            return hierarchical_cluster(working, cfg).extract_clusters(working);
        });
    }

    table.print(std::cout);
    print_paper_note(
        "Section IV (qualitative): k-means and Gaussian mixtures assume convex, "
        "fixed-count clusters and were found less favourable; hierarchical "
        "splits single objects. Expected shape: adaptive DBSCAN lowest error; "
        "parametric methods over- or under-segment depending on the scene.");
    return 0;
}
