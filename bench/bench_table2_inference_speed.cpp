// Table II: per-sample inference time of fp32 and int8 models on the
// Jetson Nano and Coral Dev Board.
//
// Two complementary results are printed:
//   1. host-measured wall-clock latency of this library's fp32 and int8
//      inference paths (verifies the real ordering of implementations);
//   2. predictions of the analytic device cost models, which encode the
//      architectural facts behind the paper's numbers (TPU runs int8
//      conv fast but dense poorly; fp32 on the Coral falls back to CPU).
//
// Latency does not depend on trained weight values, so models run with
// paper-scale architectures (PointNet ~748k params) without training.

#include "bench_common.hpp"
#include "edge/device_model.hpp"
#include "edge/measure.hpp"

using namespace hawc;
using namespace hawc::bench;

namespace {

struct model_entry {
    std::string name;
    std::vector<layer_info> fp32_layers;
    std::vector<q_op_info> int8_ops;
    latency_summary host_fp32;
    latency_summary host_int8;
};

}  // namespace

int main() {
    print_header("Table II",
                 "Inference time per LiDAR sample: host measurements plus "
                 "device cost-model predictions");

    rng r{21};
    object_pool pool;
    {
        point_cloud filler;
        for (int i = 0; i < 400; ++i) {
            filler.push_back({r.uniform(12.0, 35.0), r.uniform(-2.5, 2.5),
                              r.uniform(-2.6, -1.0)});
        }
        pool.add_cloud(filler);
    }

    const std::size_t iterations = scaled(40, 10);
    std::vector<model_entry> entries;

    auto measure_net = [&](const std::string& name, sequential& net,
                           std::vector<std::size_t> sample_shape) {
        model_entry e;
        e.name = name;
        e.fp32_layers = net.summarize(sample_shape);

        std::vector<std::size_t> batched = sample_shape;
        batched.insert(batched.begin(), 1);
        tensor sample{batched};
        for (std::size_t i = 0; i < sample.size(); ++i) {
            sample[i] = static_cast<float>(r.normal(0.0, 0.5));
        }
        e.host_fp32 = measure_fp32_latency(net, sample, iterations);

        std::vector<tensor> calibration;
        for (int i = 0; i < 8; ++i) {
            tensor c{batched};
            for (std::size_t j = 0; j < c.size(); ++j) {
                c[j] = static_cast<float>(r.normal(0.0, 0.5));
            }
            calibration.push_back(std::move(c));
        }
        const quantized_model q = quantize_model(net, calibration);
        e.int8_ops = q.op_infos(sample_shape);
        e.host_int8 = measure_int8_latency(q, sample, iterations);
        entries.push_back(std::move(e));
    };

    // OC-SVM latency is measured separately (kernel evaluations, fp32
    // only); represent its cost as a dense-equivalent op for the device
    // model: one kernel evaluation per support vector.
    {
        std::cerr << "[bench] building models...\n";
        hawc_config hc;
        hc.features.upsample.target_points = 324;
        hc.features.projection.target_points = 324;
        hawc_model hawc{hc, pool, r};
        measure_net("HAWC (Ours)", hawc.network(), {18, 18, 7});

        pointnet_config pc = pointnet_config::paper_scale();
        pointnet_model pointnet{pc, pool, r};
        measure_net("PointNet", pointnet.network(), {324, 1, 3});

        autoencoder_config ac;
        rng r2{5};
        autoencoder_model ae{ac, r2};
        // The AE classification net needs a fitted scaler only for
        // featurization, not for raw-latency measurement.
        measure_net("AutoEncoder", ae.network(),
                    {ac.features.feature_count()});
    }

    // ---- Host measurements ----
    {
        text_table table{{"Model", "Host FP32 (ms)", "Host Int8 (ms)", "Speedup"}};
        for (const auto& e : entries) {
            table.add_row({e.name, text_table::pm(e.host_fp32.mean_ms, e.host_fp32.stddev_ms),
                           text_table::pm(e.host_int8.mean_ms, e.host_int8.stddev_ms),
                           text_table::num(e.host_fp32.mean_ms /
                                           std::max(e.host_int8.mean_ms, 1e-9)) +
                               "x"});
        }
        std::cout << "Host wall-clock (this machine, scalar CPU paths):\n";
        table.print(std::cout);
    }

    // ---- Device cost models ----
    for (const auto& device :
         {device_profile::jetson_nano(), device_profile::coral_dev_board()}) {
        text_table table{{"Model", "FP32 (ms)", "Int8 (ms)", "Speedup"}};
        for (const auto& e : entries) {
            const double fp32 = predict_fp32_latency_ms(device, e.fp32_layers);
            const double int8 = predict_int8_latency_ms(device, e.int8_ops);
            table.add_row({e.name, text_table::num(fp32), text_table::num(int8),
                           text_table::num(fp32 / std::max(int8, 1e-9)) + "x"});
        }
        std::cout << "\nCost model: " << device.name << "\n";
        table.print(std::cout);
    }

    print_paper_note(
        "Jetson Nano: HAWC 0.54 -> 0.29 (1.87x); PointNet 12.15 -> 10.75 (1.13x); "
        "AutoEncoder 0.04 -> 0.03. Coral: HAWC 1.88 -> 0.62 (3.05x); PointNet "
        "57.14 -> 1.09 (52x); AutoEncoder 0.07 -> 1.05 (0.07x, SLOWER after "
        "quantization). Expected shape: HAWC fastest accurate model; int8 "
        "AutoEncoder regresses on the Coral; PointNet int8 speedup on the Coral "
        "is enormous because fp32 had no accelerator.");
    return 0;
}
