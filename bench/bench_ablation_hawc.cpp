// Extension ablation: the HAWC design choices DESIGN.md calls out that
// the paper fixes without a sweep — CNN width (the ~62k-parameter
// operating point), the height-variation neighbourhood k, and the size
// of the int8 calibration set (the paper uses 100 samples).

#include "bench_common.hpp"
#include "edge/device_model.hpp"

using namespace hawc;
using namespace hawc::bench;

int main() {
    print_header("Ablation (extension)",
                 "HAWC architecture width, height-variation k, and calibration size");

    auto ds = standard_dataset();

    // ---- (a) CNN width sweep ----
    {
        struct arch {
            const char* name;
            std::size_t c1, c2, c3, hidden;
        };
        const arch archs[] = {
            {"half width (8,12,16 / 49)", 8, 12, 16, 49},
            {"paper width (16,24,32 / 98)", 16, 24, 32, 98},
            {"double width (32,48,64 / 196)", 32, 48, 64, 196},
        };
        text_table table{{"Architecture", "Params", "Accuracy (%)", "Jetson int8 (ms)"}};
        for (const auto& a : archs) {
            rng r{7};
            hawc_config cfg = standard_hawc_config(ds);
            cfg.conv_channels[0] = a.c1;
            cfg.conv_channels[1] = a.c2;
            cfg.conv_channels[2] = a.c3;
            cfg.hidden_units = a.hidden;
            hawc_model model{cfg, ds.pool, r};
            std::cerr << "[bench] training " << a.name << "...\n";
            model.train(ds.train, nullptr, r);
            const double accuracy = model.evaluate(ds.test, r).accuracy;
            auto q = model.quantize(ds.train, r);
            const double jetson_ms = predict_int8_latency_ms(
                device_profile::jetson_nano(),
                q.op_infos(model.extractor().sample_shape()));
            table.add_row({a.name, std::to_string(model.parameter_count()),
                           text_table::num(100.0 * accuracy), text_table::num(jetson_ms)});
        }
        std::cout << "(a) CNN width:\n";
        table.print(std::cout);
    }

    // ---- (b) height-variation neighbourhood k ----
    {
        text_table table{{"knn k", "Accuracy (%)"}};
        for (const std::size_t k : {2u, 8u, 16u}) {
            rng r{7};
            hawc_config cfg = standard_hawc_config(ds);
            cfg.features.projection.knn_k = k;
            hawc_model model{cfg, ds.pool, r};
            std::cerr << "[bench] training with knn_k=" << k << "...\n";
            model.train(ds.train, nullptr, r);
            table.add_row({std::to_string(k),
                           text_table::num(100.0 * model.evaluate(ds.test, r).accuracy)});
        }
        std::cout << "\n(b) height-variation neighbourhood:\n";
        table.print(std::cout);
    }

    // ---- (c) calibration-set size for int8 PTQ ----
    {
        rng r{7};
        hawc_model model = train_standard_hawc(ds, r);
        const double fp32 = model.evaluate(ds.test, r).accuracy;
        text_table table{{"Calibration samples", "Int8 accuracy (%)", "Delta vs fp32 (%)"}};
        for (const std::size_t samples : {5u, 20u, 100u}) {
            rng qr{91};
            auto q = model.quantize(ds.train, qr, samples);
            const auto& extractor = model.extractor();
            quantized_classifier int8{std::move(q),
                                      [&extractor](const point_cloud& c, rng& rr) {
                                          return extractor.extract(c, rr);
                                      },
                                      "HAWC-int8"};
            const double accuracy = int8.evaluate(ds.test, qr).accuracy;
            table.add_row({std::to_string(samples), text_table::num(100.0 * accuracy),
                           text_table::num(100.0 * (accuracy - fp32))});
        }
        std::cout << "\n(c) int8 calibration size (paper uses 100):\n";
        table.print(std::cout);
    }

    print_paper_note(
        "no direct paper table; validates that the paper's fixed choices (62k "
        "params, 100 calibration samples) sit at sensible knees: accuracy "
        "saturates near the paper width, and calibration beyond ~20 samples "
        "yields diminishing returns.");
    return 0;
}
