// Observability overhead on clean frames: the full obs stack — a
// structured event log attached to the supervisor, a flight recorder
// taking every frame into its black-box ring, and an SLO engine
// evaluating its rules each frame — versus the bare supervisor. Event
// emission only happens on failure paths and the recorder takes the
// already-owned message cloud by move, so on a clean stream the added
// cost is the null-sink checks, the recorder's O(1) bookkeeping, and the
// SLO sweep. The gate is the same contract check.sh enforces in phase 9:
// the whole stack must cost <= 2% per clean frame.
//
// Timing uses interleaved min-of-passes: the minimum over several
// identical passes is the least noisy estimator on a shared machine, and
// interleaving cancels machine-wide drift between the configurations.

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "runtime/supervisor.hpp"
#include "sim/trajectory.hpp"
#include "telemetry/event.hpp"

using namespace hawc;

int main() {
    bench::print_header("Observability overhead",
                        "frame_supervisor: bare vs event log + flight recorder + SLO");

    single_person_dataset_config ds_cfg;
    ds_cfg.human_samples = 40;
    ds_cfg.object_samples = 40;
    ds_cfg.capture.min_cluster_points = 20;
    const single_person_dataset ds = build_single_person_dataset(ds_cfg);

    rng random{7};
    hawc_config model_cfg;
    model_cfg.features.upsample.target_points = ds.target_points;
    model_cfg.features.projection.target_points = ds.target_points;
    const hawc_model model{model_cfg, ds.pool, random};

    capture_config capture;
    capture.min_cluster_points = 20;
    supervisor_config sup_cfg;
    sup_cfg.capture = capture;

    frame_supervisor bare{sup_cfg, model};
    frame_supervisor observed{sup_cfg, model};

    // The observed supervisor carries the full pole-side obs stack.
    obs::event_log log{{.capacity = 256, .tokens_per_tick = 8.0, .burst = 32.0}};
    telemetry::tagging_event_sink tagger;
    tagger.set_target(&log);
    tagger.set_pole("bench-0");
    observed.set_event_sink(&tagger);
    obs::flight_recorder recorder{{.frame_capacity = 16}, "bench-0", 11};
    recorder.attach_sources(&log, nullptr);
    obs::slo_engine slo{observed.metrics(), observed.metrics(),
                        obs::parse_slo_rules(
                            "alert drop_burn if "
                            "ratio(hawc_frames_dropped_total/hawc_frames_total) > 0.05 "
                            "window 8/32 resolve 8 severity error\n"
                            "alert p99_latency if p99(hawc_frame_ms) > 1e9 "
                            "severity warning\n"),
                        &log};

    // Identical clean frames for both supervisors.
    const std::size_t frames = bench::scaled(80, 16);
    const scanner sensor{capture.sensor};
    rng traffic_rng{2025};
    const traffic_schedule traffic{traffic_rng, 600.0, /*arrivals_per_minute=*/12.0};
    std::vector<point_cloud> captures;
    captures.reserve(frames);
    for (std::size_t i = 0; i < frames; ++i) {
        const double t = 5.0 + static_cast<double>(i) * 4.5;
        const scene frame = traffic.scene_at(t, traffic_rng);
        captures.push_back(sensor.scan(frame.primitives(), traffic_rng, capture.scan).to_cloud());
    }

    // Each timed pass consumes a pre-built inbox of owned message clouds
    // — delivery (the copy a pole link pays to hand over a frame) happens
    // before the stopwatch starts and is identical for both loops, so the
    // measured delta is exactly the obs stack's per-frame cost. The
    // observed loop donates each consumed cloud to the recorder (a move,
    // the production hot path in pole_runtime) instead of destroying it.
    auto make_inbox = [&] {
        return std::vector<point_cloud>(captures.begin(), captures.end());
    };
    auto run_bare = [&](std::vector<point_cloud>& inbox) {
        rng r{11};
        std::size_t total = 0;
        for (point_cloud& delivered : inbox) {
            total += bare.process(delivered, r).count;
        }
        return total;
    };
    auto run_observed = [&](std::vector<point_cloud>& inbox) {
        rng r{11};
        std::size_t total = 0;
        std::uint64_t tick = 0;
        for (point_cloud& delivered : inbox) {
            tagger.set_tick(tick);
            const supervisor_carry before = observed.carry();
            const frame_report report = observed.process(delivered, r);
            total += report.count;
            recorder.record(tick, static_cast<std::uint32_t>(report.count),
                            std::move(delivered), before, report);
            log.advance_tick(tick);
            slo.evaluate(tick);
            ++tick;
        }
        return total;
    };

    // Warm-up, then interleaved timed passes.
    {
        auto inbox = make_inbox();
        run_bare(inbox);
        inbox = make_inbox();
        run_observed(inbox);
    }
    const std::size_t passes = 9;
    double bare_ms = 1e300;
    double observed_ms = 1e300;
    std::size_t bare_total = 0;
    std::size_t observed_total = 0;
    for (std::size_t p = 0; p < passes; ++p) {
        auto bare_inbox = make_inbox();
        stopwatch sw;
        bare_total = run_bare(bare_inbox);
        bare_ms = std::min(bare_ms, sw.elapsed_ms());
        auto observed_inbox = make_inbox();
        sw.reset();
        observed_total = run_observed(observed_inbox);
        observed_ms = std::min(observed_ms, sw.elapsed_ms());
    }

    const double overhead_pct = 100.0 * (observed_ms - bare_ms) / bare_ms;

    text_table table{{"Configuration", "Frames", "Best pass (ms)", "Per frame (ms)", "Count"}};
    table.add_row({"bare supervisor", std::to_string(frames),
                   text_table::num(bare_ms),
                   text_table::num(bare_ms / static_cast<double>(frames)),
                   std::to_string(bare_total)});
    table.add_row({"event log + recorder + SLO", std::to_string(frames),
                   text_table::num(observed_ms),
                   text_table::num(observed_ms / static_cast<double>(frames)),
                   std::to_string(observed_total)});
    table.print(std::cout);

    // Sanity: identical inputs and seeds must count identically, the
    // recorder must have seen every frame, and the SLO engine must have
    // actually swept its rules.
    if (bare_total != observed_total) {
        std::cout << "\nFAIL: counts diverged under observability (" << bare_total
                  << " vs " << observed_total << ")\n";
        return 1;
    }
    if (recorder.frames_recorded() < frames) {
        std::cout << "\nFAIL: flight recorder missed frames ("
                  << recorder.frames_recorded() << " < " << frames << ")\n";
        return 1;
    }
    if (slo.evaluations() == 0) {
        std::cout << "\nFAIL: SLO engine never evaluated\n";
        return 1;
    }

    std::cout << "\nObservability overhead on clean frames: "
              << text_table::num(overhead_pct) << "% (budget: <= 2%)\n"
              << "Frames recorded: " << recorder.frames_recorded()
              << ", events published: " << log.published()
              << ", SLO evaluations: " << slo.evaluations() << "\n";
    return overhead_pct <= 2.0 ? 0 : 1;
}
