// Figure 4: (a) the k-NN-distance curve of one capture with its elbow
// point; (b) the distribution of per-capture optimal eps values across a
// dataset — the motivation for adaptive clustering (a fixed eps cannot
// cover the observed spread).

#include "bench_common.hpp"
#include "clustering/adaptive_eps.hpp"
#include "common/stats.hpp"

using namespace hawc;
using namespace hawc::bench;

int main() {
    print_header("Figure 4",
                 "k-NN distance elbow (one capture) and optimal-eps distribution");

    const auto crowd_cfg = standard_crowd_config();
    const auto crowd = standard_crowd_dataset();
    const adaptive_eps_config eps_cfg = crowd_cfg.capture.clustering;

    // ---- (a) one capture's sorted k-NN distance curve ----
    for (const auto& sample : crowd) {
        const point_cloud ingested =
            ingest(sample.raw, crowd_cfg.capture.roi, crowd_cfg.capture.ground);
        if (ingested.size() < 200) continue;
        const auto curve = knn_distance_curve(ingested, eps_cfg.k, eps_cfg.metric);
        const double eps = adaptive_epsilon(ingested, eps_cfg);
        std::cout << "Figure 4a: sorted " << eps_cfg.k << "-NN distances of one capture ("
                  << curve.size() << " points), elbow eps = " << text_table::num(eps, 3)
                  << "\n";
        const std::size_t steps = 12;
        for (std::size_t i = 0; i < steps; ++i) {
            const std::size_t index = i * (curve.size() - 1) / (steps - 1);
            const double value = curve[index];
            std::cout << "  rank " << index << ": " << text_table::num(value, 3) << " "
                      << std::string(static_cast<std::size_t>(value * 120), '#') << "\n";
        }
        break;
    }

    // ---- (b) optimal eps across the dataset ----
    histogram eps_hist{0.0, 0.6, 24};
    running_stats eps_stats;
    for (const auto& sample : crowd) {
        const point_cloud ingested =
            ingest(sample.raw, crowd_cfg.capture.roi, crowd_cfg.capture.ground);
        if (ingested.size() < 30) continue;
        const double eps = adaptive_epsilon(ingested, eps_cfg);
        eps_hist.add(eps);
        eps_stats.add(eps);
    }
    std::cout << "\nFigure 4b: optimal eps across " << eps_stats.count()
              << " captures: min=" << text_table::num(eps_stats.min(), 3)
              << " max=" << text_table::num(eps_stats.max(), 3)
              << " mode bin center=" << text_table::num(eps_hist.bin_center(eps_hist.mode_bin()), 3)
              << "\n";
    for (const auto& row : eps_hist.ascii_rows(40)) std::cout << "  " << row << "\n";

    print_paper_note(
        "the paper finds per-sample optimal eps spanning 0.04..9.06 with a mode "
        "near 0.08; one sample's elbow sits at 0.069. Expected shape: a wide, "
        "unimodal spread of optimal eps across captures — no single fixed value "
        "fits all.");
    return 0;
}
