// Figure 9: the height-aware projection (HAP) ablation — detection
// accuracy of HAWC and counting MAE/MSE of HAWC-CC with HAP vs
// bird-eye-view (BEV), range-view (RV), density-aware (DA), and
// three-view (TV) projections.
//
// Paper: HAP beats the alternatives by up to 12.44% accuracy and
// 7.3..75.6% MAE.

#include "bench_common.hpp"

using namespace hawc;
using namespace hawc::bench;

int main() {
    print_header("Figure 9",
                 "Projection ablation: HAP vs BEV / RV / DA / TV inside HAWC and HAWC-CC");

    auto ds = standard_dataset();
    const auto crowd_cfg = standard_crowd_config();
    const auto crowd = standard_crowd_dataset();

    const projection_method methods[] = {
        projection_method::hap, projection_method::three_view, projection_method::bev,
        projection_method::range_view, projection_method::density_aware};

    text_table table{{"Projection", "Detection Acc (%)", "Counting MAE", "Counting MSE"}};

    for (const auto method : methods) {
        rng r{7};
        hawc_config cfg = standard_hawc_config(ds);
        cfg.features.projection.method = method;
        hawc_model model{cfg, ds.pool, r};
        std::cerr << "[bench] training HAWC with " << to_string(method) << "...\n";
        model.train(ds.train, nullptr, r);
        const double accuracy = model.evaluate(ds.test, r).accuracy;

        crowd_counter counter{crowd_cfg.capture, model};
        rng eval_rng{31};
        const auto eval = counter.evaluate(crowd, eval_rng);

        table.add_row({to_string(method), text_table::num(100.0 * accuracy),
                       text_table::num(eval.metrics.mae), text_table::num(eval.metrics.mse)});
    }

    table.print(std::cout);
    print_paper_note(
        "HAP achieves the highest detection accuracy (99.97%, up to +12.44 over "
        "alternatives) and the lowest counting MAE/MSE (7.3-75.6% lower MAE). "
        "Expected shape: HAP best on both axes; TV (HAP minus the height "
        "channel) trails HAP; BEV loses the most from its missing vertical "
        "information.");
    return 0;
}
