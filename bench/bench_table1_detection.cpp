// Table I: single-person human detection accuracy of HAWC vs PointNet,
// AutoEncoder, and OC-SVM, in fp32 and after int8 post-training
// quantization.
//
// Paper values for reference: HAWC 99.97% (int8 99.53, -0.44),
// PointNet 94.91 (89.59, -5.32), AutoEncoder 77.94 (73.35, -4.59),
// OC-SVM 48.60 (no int8 support).

#include "bench_common.hpp"

using namespace hawc;
using namespace hawc::bench;

int main() {
    print_header("Table I",
                 "Single-person detection accuracy, fp32 and int8 "
                 "(synthetic LiDAR dataset; see EXPERIMENTS.md)");

    auto ds = standard_dataset();
    text_table table{{"Model", "FP32 Acc(%)", "F1", "Precision", "Recall", "Int8 Acc(%)",
                      "Acc Diff(%)"}};

    // ---- OC-SVM ----
    {
        ocsvm_model model;
        model.train(ds.train);
        const auto m = model.evaluate(ds.test);
        table.add_row({"OC-SVM", text_table::num(100.0 * m.accuracy), text_table::num(m.f1),
                       text_table::num(m.precision), text_table::num(m.recall), "-", "-"});
    }

    // ---- AutoEncoder ----
    {
        rng r{11};
        autoencoder_model model{standard_autoencoder_config(), r};
        std::cerr << "[bench] training AutoEncoder...\n";
        model.train(ds.train, nullptr, r);
        const auto m = model.evaluate(ds.test);
        auto q = model.quantize(ds.train, r);
        quantized_classifier int8{std::move(q),
                                  [&model](const point_cloud& c, rng&) {
                                      return model.featurize_cluster(c);
                                  },
                                  "AutoEncoder-int8"};
        const auto qm = int8.evaluate(ds.test, r);
        table.add_row({"AutoEncoder", text_table::num(100.0 * m.accuracy),
                       text_table::num(m.f1), text_table::num(m.precision),
                       text_table::num(m.recall), text_table::num(100.0 * qm.accuracy),
                       text_table::num(100.0 * (qm.accuracy - m.accuracy))});
    }

    // ---- PointNet ----
    {
        rng r{13};
        pointnet_model model{standard_pointnet_config(ds), ds.pool, r};
        std::cerr << "[bench] training PointNet (" << model.parameter_count()
                  << " params)...\n";
        model.train(ds.train, nullptr, r);
        const auto m = model.evaluate(ds.test, r);
        auto q = model.quantize(ds.train, r);
        quantized_classifier int8{std::move(q),
                                  [&model](const point_cloud& c, rng& rr) {
                                      return model.featurize_cluster(c, rr);
                                  },
                                  "PointNet-int8"};
        const auto qm = int8.evaluate(ds.test, r);
        table.add_row({"PointNet", text_table::num(100.0 * m.accuracy), text_table::num(m.f1),
                       text_table::num(m.precision), text_table::num(m.recall),
                       text_table::num(100.0 * qm.accuracy),
                       text_table::num(100.0 * (qm.accuracy - m.accuracy))});
    }

    // ---- HAWC ----
    {
        rng r{7};
        hawc_model model = train_standard_hawc(ds, r);
        const auto m = model.evaluate(ds.test, r);
        auto q = model.quantize(ds.train, r);
        const auto& extractor = model.extractor();
        quantized_classifier int8{std::move(q),
                                  [&extractor](const point_cloud& c, rng& rr) {
                                      return extractor.extract(c, rr);
                                  },
                                  "HAWC-int8"};
        const auto qm = int8.evaluate(ds.test, r);
        table.add_row({"HAWC (Ours)", text_table::num(100.0 * m.accuracy),
                       text_table::num(m.f1), text_table::num(m.precision),
                       text_table::num(m.recall), text_table::num(100.0 * qm.accuracy),
                       text_table::num(100.0 * (qm.accuracy - m.accuracy))});
    }

    table.print(std::cout);
    print_paper_note(
        "HAWC 99.97 / int8 99.53 (-0.44); PointNet 94.91 / 89.59 (-5.32); "
        "AutoEncoder 77.94 / 73.35 (-4.59); OC-SVM 48.60. Expected shape: HAWC "
        "highest in both precisions with the smallest quantization loss.");
    return 0;
}
