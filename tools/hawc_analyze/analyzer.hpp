#pragma once

// hawc_analyze — in-repo semantic static analyzer (DESIGN.md §16).
//
// Orchestration model: every analyzed file is lexed once (lexer.hpp),
// then three rule families walk the shared token streams:
//
//   pattern rules   token-sequence checks per file (the eight rules
//                   ported from the grep linter, the noexcept/destructor
//                   throw audit, and waiver hygiene)
//   graph rules     the module-layer DAG over the src/ include graph
//                   (layer order parsed from src/CMakeLists.txt
//                   hawc_module declarations), include-cycle detection,
//                   and the replay determinism audit over the
//                   reachable-from-replay closure
//   lock rules      lock-acquisition scopes per function, the
//                   inter-mutex order graph with cycle detection, and
//                   locks held across thread-pool fan-out calls
//
// Findings are deduplicated per (rule, file, line), then waivers
// (`lint:allow(rule): reason` on the same line) and the checked-in
// baseline (tools/hawc_analyze/baseline.txt) are applied. Only findings
// that survive both make the exit status nonzero.

#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace hawc::analyze {

struct finding {
    std::string rule;
    std::string file;  // analysis-root-relative, forward slashes
    int line = 0;
    std::string message;  // line-number-free (baseline keys depend on it)
    bool waived = false;
    bool baselined = false;
};

/// Stable identity of a finding across line drift: rule|file|message.
std::string finding_key(const finding& f);

struct analysis_input {
    std::filesystem::path root;
    std::vector<lexed_file> files;
    // Module layer table from <root>/src/CMakeLists.txt: direct deps and
    // the transitive closure (what each module may include).
    std::map<std::string, std::vector<std::string>> module_deps;
    std::map<std::string, std::set<std::string>> module_closure;
};

// --- rule families ---------------------------------------------------------

void run_pattern_rules(const analysis_input& in, std::vector<finding>& out);
void run_graph_rules(const analysis_input& in, std::vector<finding>& out);
void run_lock_rules(const analysis_input& in, std::vector<finding>& out);

/// Rule catalogue: id -> one-line description. The self-test requires
/// every id here to be exercised by the tree_bad fixtures.
const std::map<std::string, std::string>& rule_catalogue();

// --- driver ----------------------------------------------------------------

struct analysis_options {
    std::filesystem::path root;
    std::optional<std::filesystem::path> compile_db;  // adds TUs to the walk
    std::optional<std::filesystem::path> baseline;
    bool write_baseline = false;
    std::vector<std::string> only_paths;  // restrict to these root-relative prefixes
};

/// A lint:expect(rule) marker seen during the walk (self-test only).
struct expect_site {
    std::string file;
    int line = 0;
    std::string rule;
};

struct analysis_result {
    std::vector<finding> findings;  // sorted by (file, line, rule)
    std::vector<expect_site> expects;
    std::size_t files_analyzed = 0;
    std::size_t active = 0;     // neither waived nor baselined
    std::size_t waived = 0;
    std::size_t baselined = 0;
    std::vector<std::string> errors;  // unreadable files, bad config, ...
};

/// Load, lex, and analyze the tree under `opts.root`. Walks src/, tools/,
/// bench/, examples/, and tests/ (minus tests/lint/) plus any files the
/// compile database names, applies waivers and the baseline, and sorts
/// the findings.
analysis_result analyze(const analysis_options& opts);

/// Parse hawc_module(<name> <deps...>) declarations. Exposed for tests.
std::map<std::string, std::vector<std::string>> parse_module_table(std::string_view cmake_text);

/// Transitive closure of the direct-deps table. Exposed for tests.
std::map<std::string, std::set<std::string>> module_transitive_closure(
    const std::map<std::string, std::vector<std::string>>& deps);

// --- baseline --------------------------------------------------------------

std::set<std::string> load_baseline(const std::filesystem::path& path,
                                    std::vector<std::string>& errors);
void write_baseline_file(const std::filesystem::path& path, const std::vector<finding>& findings);

// --- compile database ------------------------------------------------------

/// Extract the "file" entries from a compile_commands.json. Minimal JSON
/// scanning (the format is machine-generated); returns absolute paths.
std::vector<std::filesystem::path> compile_db_files(const std::filesystem::path& db,
                                                    std::vector<std::string>& errors);

// --- reports ---------------------------------------------------------------

std::string render_text(const analysis_result& r, bool verbose);
std::string render_json(const analysis_result& r);
std::string render_sarif(const analysis_result& r);

// --- self-test -------------------------------------------------------------

/// Fixture self-test over tests/lint: tree_bad findings must exactly
/// match the lint:expect annotations, tree_clean must be finding-free
/// (with its waivers provably consumed), every catalogued rule must be
/// pinned, and the baseline round-trip must suppress everything.
/// Returns 0 on success, prints failures to stdout.
int run_self_test(const std::filesystem::path& fixtures_dir);

}  // namespace hawc::analyze
