#pragma once

// C++-aware lexer for the in-repo semantic analyzer (hawc_analyze).
//
// This is not a conforming C++ tokenizer — it is the minimal faithful
// subset the lint rules need: comments (line and block), string literals
// (ordinary, prefixed, and raw), character literals, preprocessor
// directives as whole logical lines, backslash line-splices, and `#if 0`
// regions, all stripped out of the code-token stream so a rule that
// matches tokens can never be fooled by prose in a comment or a pattern
// inside a string — the exact failure mode of the grep linters this
// replaces (DESIGN.md §16).
//
// Comments are scanned (not emitted as tokens) for the three in-band
// annotations:
//   lint:allow(<rule>): <reason>   waiver for a finding on the same line
//   lint:expect(<rule>)            self-test marker: a finding of <rule>
//                                  must be reported on this line
//   "lock-free"/"lock_free"        a lock-freedom claim (scopes the
//                                  mutex-in-lockfree rule to this file)

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hawc::analyze {

enum class token_kind {
    identifier,    // names and keywords, including `new`, `throw`, `noexcept`
    number,        // pp-number: 0x1F, 1'000, 6.02e23f
    string_lit,    // "..."  u8"..."  R"raw(...)raw"  (text excludes quotes)
    char_lit,      // 'a'  '\n'
    punct,         // one punctuator; `::` and `->` are single tokens
    pp_directive,  // one whole logical preprocessor line, text trimmed
};

struct token {
    token_kind kind;
    std::string text;
    int line = 0;  // 1-based physical line of the token's first character
};

/// A `lint:allow(rule): reason` comment. Attributed to the physical line
/// the marker appears on (same-line placement is the waiver contract).
struct waiver {
    int line = 0;
    std::string rule;
    bool has_reason = false;
};

/// A `lint:expect(rule)` self-test marker.
struct expectation {
    int line = 0;
    std::string rule;
};

struct lexed_file {
    std::string path;  // analysis-root-relative, forward slashes
    std::vector<token> tokens;
    std::vector<waiver> waivers;
    std::vector<expectation> expects;
    bool claims_lockfree = false;
    int line_count = 0;
};

/// Tokenize one translation unit. `path` is stored verbatim.
lexed_file lex(std::string_view source, std::string path);

/// True if the token is an identifier with exactly this text.
inline bool is_ident(const token& t, std::string_view text) {
    return t.kind == token_kind::identifier && t.text == text;
}

/// True if the token is a punctuator with exactly this text.
inline bool is_punct(const token& t, std::string_view text) {
    return t.kind == token_kind::punct && t.text == text;
}

}  // namespace hawc::analyze
