// hawc_analyze CLI. See DESIGN.md §16 and `hawc_analyze --help`.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analyzer.hpp"

namespace {

constexpr const char* usage =
    "usage: hawc_analyze [options] [path-prefix...]\n"
    "\n"
    "In-repo semantic static analyzer: token-aware banned-pattern rules,\n"
    "the module-layer include DAG, lock-order and determinism audits.\n"
    "Walks src/, tools/, bench/, examples/, and tests/ (minus tests/lint/)\n"
    "under --root, plus anything the compile database names.\n"
    "\n"
    "  --root DIR         repository root to analyze (default: .)\n"
    "  --compile-db FILE  compile_commands.json to add translation units from\n"
    "  --baseline FILE    baseline file (default: tools/hawc_analyze/baseline.txt\n"
    "                     under the root, when present)\n"
    "  --write-baseline   rewrite the baseline with the current findings\n"
    "  --sarif FILE       write a SARIF 2.1.0 report\n"
    "  --json FILE        write a findings JSON report\n"
    "  --verbose          also print waived and baselined findings\n"
    "  --list-rules       print the rule catalogue and exit\n"
    "  --self-test DIR    run the fixture self-test over DIR (tests/lint)\n"
    "\n"
    "Exit status: 0 when no active (non-waived, non-baselined) findings,\n"
    "1 when there are, 2 on usage or I/O errors.\n";

bool write_text_file(const std::string& path, const std::string& text) {
    std::ofstream out{path, std::ios::trunc};
    if (!out) return false;
    out << text;
    return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace hawc::analyze;
    analysis_options opts;
    opts.root = ".";
    std::string sarif_path;
    std::string json_path;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n%s", arg.c_str(), usage);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage, stdout);
            return 0;
        } else if (arg == "--root") {
            opts.root = next();
        } else if (arg == "--compile-db") {
            opts.compile_db = std::filesystem::path{next()};
        } else if (arg == "--baseline") {
            opts.baseline = std::filesystem::path{next()};
        } else if (arg == "--write-baseline") {
            opts.write_baseline = true;
        } else if (arg == "--sarif") {
            sarif_path = next();
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--list-rules") {
            for (const auto& [id, desc] : rule_catalogue()) {
                std::printf("%-22s %s\n", id.c_str(), desc.c_str());
            }
            return 0;
        } else if (arg == "--self-test") {
            return run_self_test(next());
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n%s", arg.c_str(), usage);
            return 2;
        } else {
            opts.only_paths.push_back(arg);
        }
    }

    analysis_result result = analyze(opts);
    std::fputs(render_text(result, verbose).c_str(), stdout);
    if (!sarif_path.empty() && !write_text_file(sarif_path, render_sarif(result))) {
        std::fprintf(stderr, "cannot write %s\n", sarif_path.c_str());
        return 2;
    }
    if (!json_path.empty() && !write_text_file(json_path, render_json(result))) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 2;
    }
    if (!result.errors.empty()) return 2;
    return result.active == 0 ? 0 : 1;
}
