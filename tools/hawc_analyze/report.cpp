// Output renderers: human text, a findings JSON, and SARIF 2.1.0 so CI
// can annotate PRs from the uploaded artifact.

#include <sstream>

#include "analyzer.hpp"

namespace hawc::analyze {
namespace {

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

const char* status_of(const finding& f) {
    if (f.waived) return "waived";
    if (f.baselined) return "baselined";
    return "active";
}

}  // namespace

std::string render_text(const analysis_result& r, bool verbose) {
    std::ostringstream out;
    for (const finding& f : r.findings) {
        if (!verbose && (f.waived || f.baselined)) continue;
        out << "analyze[" << f.rule << "] " << f.file << ":" << f.line << ": " << f.message;
        if (f.waived) out << "  (waived)";
        if (f.baselined) out << "  (baselined)";
        out << '\n';
    }
    for (const std::string& e : r.errors) out << "analyze[error] " << e << '\n';
    out << "hawc_analyze: " << r.files_analyzed << " files, " << r.active << " active finding(s)";
    if (r.waived != 0) out << ", " << r.waived << " waived";
    if (r.baselined != 0) out << ", " << r.baselined << " baselined";
    out << '\n';
    return std::move(out).str();
}

std::string render_json(const analysis_result& r) {
    std::ostringstream out;
    out << "{\n  \"files_analyzed\": " << r.files_analyzed << ",\n  \"active\": " << r.active
        << ",\n  \"waived\": " << r.waived << ",\n  \"baselined\": " << r.baselined
        << ",\n  \"findings\": [";
    bool first = true;
    for (const finding& f : r.findings) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
            << json_escape(f.file) << "\", \"line\": " << f.line << ", \"status\": \""
            << status_of(f) << "\", \"message\": \"" << json_escape(f.message) << "\"}";
    }
    out << "\n  ]\n}\n";
    return std::move(out).str();
}

std::string render_sarif(const analysis_result& r) {
    std::ostringstream out;
    out << "{\n"
           "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
           "  \"version\": \"2.1.0\",\n"
           "  \"runs\": [\n"
           "    {\n"
           "      \"tool\": {\n"
           "        \"driver\": {\n"
           "          \"name\": \"hawc_analyze\",\n"
           "          \"informationUri\": \"DESIGN.md\",\n"
           "          \"rules\": [";
    bool first = true;
    for (const auto& [id, desc] : rule_catalogue()) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "            {\"id\": \"" << json_escape(id)
            << "\", \"shortDescription\": {\"text\": \"" << json_escape(desc) << "\"}}";
    }
    out << "\n          ]\n"
           "        }\n"
           "      },\n"
           "      \"results\": [";
    first = true;
    for (const finding& f : r.findings) {
        out << (first ? "\n" : ",\n");
        first = false;
        // Waived/baselined findings ship with level "note" so the PR
        // annotation shows the debt without failing anything.
        const bool soft = f.waived || f.baselined;
        out << "        {\"ruleId\": \"" << json_escape(f.rule) << "\", \"level\": \""
            << (soft ? "note" : "error") << "\", \"message\": {\"text\": \""
            << json_escape(f.message) << "\"}, \"locations\": [{\"physicalLocation\": "
            << "{\"artifactLocation\": {\"uri\": \"" << json_escape(f.file)
            << "\"}, \"region\": {\"startLine\": " << (f.line > 0 ? f.line : 1) << "}}}]}";
    }
    out << "\n      ]\n    }\n  ]\n}\n";
    return std::move(out).str();
}

}  // namespace hawc::analyze
