// Pattern rule family: per-file token-sequence checks. These are the
// eight rules ported from the grep-based scripts/lint.sh plus the
// noexcept/destructor throw audit and waiver hygiene. Because they match
// lexed tokens, prose in comments, patterns inside string literals, and
// code disabled under `#if 0` can no longer trip (or hide) a rule —
// the grep scanner's two standing failure modes.

#include <regex>
#include <string_view>

#include "analyzer.hpp"

namespace hawc::analyze {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool in_set(std::string_view s, std::initializer_list<std::string_view> set) {
    for (std::string_view v : set) {
        if (s == v) return true;
    }
    return false;
}

struct file_ctx {
    const lexed_file& f;
    std::vector<finding>& out;

    const token& tok(std::size_t i) const { return f.tokens[i]; }
    std::size_t size() const { return f.tokens.size(); }
    bool next_is_punct(std::size_t i, std::string_view p) const {
        return i + 1 < size() && is_punct(tok(i + 1), p);
    }
    bool prev_is_ident(std::size_t i, std::string_view name) const {
        return i > 0 && is_ident(tok(i - 1), name);
    }
    // tokens[i] is `name` and the two before it are `std` `::`
    bool std_qualified(std::size_t i) const {
        return i >= 2 && is_punct(tok(i - 1), "::") && is_ident(tok(i - 2), "std");
    }
    void report(const char* rule, int line, std::string message) {
        out.push_back({rule, f.path, line, std::move(message), false, false});
    }
};

// --- the eight ported rules ------------------------------------------------

void rule_raw_rng(file_ctx& c) {
    if (starts_with(c.f.path, "src/common/rng.")) return;
    for (std::size_t i = 0; i < c.size(); ++i) {
        const token& t = c.tok(i);
        if (t.kind != token_kind::identifier) continue;
        if (t.text == "random_device") {
            c.report("raw-rng", t.line,
                     "std::random_device — randomness must flow through common/rng so replays "
                     "stay deterministic");
        } else if ((t.text == "rand" || t.text == "srand") && c.next_is_punct(i, "(")) {
            c.report("raw-rng", t.line,
                     t.text + "() — randomness must flow through common/rng so replays stay "
                              "deterministic");
        }
    }
}

void rule_naked_new(file_ctx& c) {
    for (std::size_t i = 0; i < c.size(); ++i) {
        const token& t = c.tok(i);
        if (t.kind != token_kind::identifier) continue;
        if (c.prev_is_ident(i, "operator")) continue;  // operator new/delete overloads
        if (t.text == "new") {
            if (i + 1 < c.size() && (c.tok(i + 1).kind == token_kind::identifier ||
                                     is_punct(c.tok(i + 1), "::"))) {
                c.report("naked-new", t.line, "naked new-expression — ownership must be RAII-managed");
            }
        } else if (t.text == "delete") {
            // `= delete;` has punct next; `delete p` / `delete[] p` have an
            // identifier (possibly after `[]`).
            std::size_t j = i + 1;
            if (c.next_is_punct(i, "[") && i + 2 < c.size() && is_punct(c.tok(i + 2), "]")) {
                j = i + 3;
            }
            if (j < c.size() && (c.tok(j).kind == token_kind::identifier ||
                                 is_punct(c.tok(j), "*") || is_punct(c.tok(j), "::"))) {
                c.report("naked-new", t.line,
                         "naked delete-expression — ownership must be RAII-managed");
            }
        }
    }
}

void rule_mutex_in_lockfree(file_ctx& c) {
    if (!c.f.claims_lockfree) return;
    for (std::size_t i = 0; i < c.size(); ++i) {
        const token& t = c.tok(i);
        if (t.kind != token_kind::identifier) continue;
        if (in_set(t.text, {"mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
                            "recursive_timed_mutex", "shared_timed_mutex"}) &&
            c.std_qualified(i)) {
            c.report("mutex-in-lockfree", t.line,
                     "std::" + t.text + " in a file whose banner claims lock-free behaviour");
        }
    }
}

void rule_double_seconds(file_ctx& c) {
    if (c.f.path == "src/common/timer.hpp") return;
    for (std::size_t i = 0; i + 2 < c.size(); ++i) {
        if (is_ident(c.tok(i), "duration") && is_punct(c.tok(i + 1), "<") &&
            (is_ident(c.tok(i + 2), "double") || is_ident(c.tok(i + 2), "float"))) {
            c.report("double-seconds", c.tok(i).line,
                     "duration<" + c.tok(i + 2).text +
                         "> timing — elapsed-time arithmetic goes through common/timer.hpp");
        }
    }
}

void rule_wallclock_in_replay(file_ctx& c) {
    if (!starts_with(c.f.path, "src/replay/")) return;
    for (std::size_t i = 0; i < c.size(); ++i) {
        const token& t = c.tok(i);
        if (t.kind != token_kind::identifier) continue;
        if (in_set(t.text, {"system_clock", "high_resolution_clock", "steady_clock",
                            "gettimeofday", "clock_gettime", "localtime", "gmtime"})) {
            c.report("wallclock-in-replay", t.line,
                     t.text + " — a clock read in src/replay breaks bit-exact replay");
        } else if (t.text == "time" && c.next_is_punct(i, "(")) {
            c.report("wallclock-in-replay", t.line,
                     "time() — a clock read in src/replay breaks bit-exact replay");
        }
    }
}

void rule_sleep_in_fleet(file_ctx& c) {
    if (!starts_with(c.f.path, "src/fleet/")) return;
    for (std::size_t i = 0; i < c.size(); ++i) {
        const token& t = c.tok(i);
        if (t.kind != token_kind::identifier) continue;
        if (in_set(t.text, {"sleep_for", "sleep_until"}) ||
            (in_set(t.text, {"usleep", "nanosleep", "sleep"}) && c.next_is_punct(i, "("))) {
            c.report("sleep-in-fleet", t.line,
                     t.text + " — the fleet runs on tick virtual time; a blocking sleep stalls "
                              "every pole sharing the pool lane");
        }
    }
}

void rule_simd_outside_kernels(file_ctx& c) {
    if (starts_with(c.f.path, "src/nn/kernels/")) return;
    static const std::regex neon_intrinsic{"^v[a-z][a-z0-9_]*_[sufp](8|16|32|64)"};
    static const std::regex neon_type{"^(u?int|float|poly)(8|16|32|64)x(2|4|8|16)(x[2-4])?_t$"};
    for (const token& t : c.f.tokens) {
        if (t.kind == token_kind::pp_directive) {
            if (starts_with(t.text, "#include") &&
                (t.text.find("mmintrin.h") != std::string::npos ||
                 t.text.find("arm_neon.h") != std::string::npos)) {
                c.report("simd-outside-kernels", t.line,
                         "intrinsics header include — vector code lives behind the dispatch "
                         "table in src/nn/kernels/");
            }
            continue;
        }
        if (t.kind != token_kind::identifier) continue;
        const bool x86 = starts_with(t.text, "_mm_") || starts_with(t.text, "_mm256_") ||
                         starts_with(t.text, "_mm512_") || starts_with(t.text, "__m128") ||
                         starts_with(t.text, "__m256") || starts_with(t.text, "__m512");
        if (x86 || std::regex_search(t.text, neon_intrinsic) ||
            std::regex_match(t.text, neon_type)) {
            c.report("simd-outside-kernels", t.line,
                     "raw SIMD ('" + t.text +
                         "') — vector code lives behind the dispatch table in src/nn/kernels/");
        }
    }
}

void rule_raw_logging(file_ctx& c) {
    if (!starts_with(c.f.path, "src/") || starts_with(c.f.path, "src/obs/")) return;
    for (std::size_t i = 0; i < c.size(); ++i) {
        const token& t = c.tok(i);
        if (t.kind != token_kind::identifier) continue;
        if (in_set(t.text, {"cout", "cerr", "clog"}) && c.std_qualified(i)) {
            c.report("raw-logging", t.line,
                     "std::" + t.text +
                         " — library code reports through events/metrics/spans, not stdio");
        } else if (in_set(t.text, {"printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs"}) &&
                   c.next_is_punct(i, "(")) {
            c.report("raw-logging", t.line,
                     t.text + "() — library code reports through events/metrics/spans, not stdio");
        }
    }
}

// --- noexcept / destructor throw audit -------------------------------------

bool is_throwing_helper(std::string_view name) {
    // Small annotated allowlist of helpers whose contract is "throws":
    // the HAWC_REQUIRE precondition macro and the throw_* helper family
    // (common/error.hpp).
    return name == "HAWC_REQUIRE" || starts_with(name, "throw_");
}

// Skip a balanced token group starting at tokens[i] (which must be the
// opener). Returns the index one past the matching closer.
std::size_t skip_balanced(const lexed_file& f, std::size_t i, std::string_view open,
                          std::string_view close) {
    int depth = 0;
    for (; i < f.tokens.size(); ++i) {
        if (is_punct(f.tokens[i], open)) {
            ++depth;
        } else if (is_punct(f.tokens[i], close)) {
            if (--depth == 0) return i + 1;
        }
    }
    return i;
}

struct body_region {
    std::size_t begin = 0;  // index of the opening `{`
    std::size_t end = 0;    // index of the matching `}`
    const char* rule;       // throw-in-destructor | throw-in-noexcept
};

// Scan a function body region for throw-expressions and calls into the
// throwing allowlist. Throws inside a try block are assumed handled by
// its catch and are not flagged.
void audit_region(file_ctx& c, const body_region& r) {
    int brace = 0;
    std::vector<int> try_braces;  // brace depth at which each try body opened
    bool pending_try = false;
    for (std::size_t i = r.begin; i <= r.end && i < c.size(); ++i) {
        const token& t = c.tok(i);
        if (is_punct(t, "{")) {
            ++brace;
            if (pending_try) {
                try_braces.push_back(brace);
                pending_try = false;
            }
            continue;
        }
        if (is_punct(t, "}")) {
            if (!try_braces.empty() && try_braces.back() == brace) try_braces.pop_back();
            --brace;
            continue;
        }
        if (t.kind != token_kind::identifier) continue;
        if (t.text == "try") {
            pending_try = true;
            continue;
        }
        if (!try_braces.empty()) continue;  // inside try: assume caught locally
        if (t.text == "throw") {
            c.report(r.rule, t.line,
                     std::string{"throw-expression inside a "} +
                         (r.rule == std::string_view{"throw-in-destructor"}
                              ? "destructor (destructors are noexcept by default)"
                              : "noexcept function"));
        } else if (is_throwing_helper(t.text) && c.next_is_punct(i, "(")) {
            c.report(r.rule, t.line,
                     "call to throwing helper '" + t.text + "' inside a " +
                         (r.rule == std::string_view{"throw-in-destructor"} ? "destructor"
                                                                            : "noexcept function"));
        }
    }
}

// After a declarator's closing `)` at index i (one past it), walk the
// specifier zone to decide whether a body follows and whether it is
// noexcept. `noexcept_fn` is set for plain `noexcept` / `noexcept(true)`.
// Returns the index of the body's `{`, or npos when the declarator ends
// in `;` / `= default` / `= delete` / anything unexpected.
std::size_t find_body(const lexed_file& f, std::size_t i, bool& noexcept_fn) {
    const std::size_t npos = static_cast<std::size_t>(-1);
    while (i < f.tokens.size()) {
        const token& t = f.tokens[i];
        if (is_punct(t, "{")) return i;
        if (is_punct(t, ";") || is_punct(t, "=")) return npos;
        if (is_ident(t, "noexcept")) {
            if (i + 1 < f.tokens.size() && is_punct(f.tokens[i + 1], "(")) {
                std::size_t close = skip_balanced(f, i + 1, "(", ")");
                // Only literal noexcept(true)/noexcept(false) are decided;
                // value-dependent specifications are left alone.
                if (close == i + 4 && is_ident(f.tokens[i + 2], "true")) noexcept_fn = true;
                if (close == i + 4 && is_ident(f.tokens[i + 2], "false")) noexcept_fn = false;
                i = close;
                continue;
            }
            noexcept_fn = true;
            ++i;
            continue;
        }
        if (is_punct(t, ":")) {
            // Constructor member-init list: skip `name(args)` / `name{args}`
            // groups separated by commas; the `{` that follows the last
            // group is the body.
            ++i;
            while (i < f.tokens.size()) {
                const token& u = f.tokens[i];
                if (is_punct(u, "(")) {
                    i = skip_balanced(f, i, "(", ")");
                } else if (is_punct(u, "{")) {
                    // `{` directly after `,` or an identifier group that has
                    // not consumed an initializer yet is ambiguous; treat a
                    // `{` preceded by an identifier as an init group, any
                    // other as the body.
                    if (i > 0 && f.tokens[i - 1].kind == token_kind::identifier) {
                        i = skip_balanced(f, i, "{", "}");
                    } else {
                        return i;
                    }
                } else if (is_punct(u, ";")) {
                    return npos;
                } else {
                    ++i;
                }
            }
            return npos;
        }
        ++i;
    }
    return npos;
}

void rule_throw_audit(file_ctx& c) {
    const std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<body_region> regions;
    for (std::size_t i = 0; i < c.size(); ++i) {
        const token& t = c.tok(i);
        // Destructor: `~name (` where the context rules out bitwise-not —
        // statement/class-body position or a qualified `type::~type`.
        if (is_punct(t, "~") && i + 2 < c.size() &&
            c.tok(i + 1).kind == token_kind::identifier && is_punct(c.tok(i + 2), "(")) {
            const bool dtor_context =
                i == 0 || is_punct(c.tok(i - 1), "{") || is_punct(c.tok(i - 1), "}") ||
                is_punct(c.tok(i - 1), ";") || is_punct(c.tok(i - 1), "::") ||
                is_punct(c.tok(i - 1), ":") || is_ident(c.tok(i - 1), "virtual");
            if (!dtor_context) continue;
            std::size_t after = skip_balanced(c.f, i + 2, "(", ")");
            bool noexcept_fn = true;  // destructors are noexcept by default
            std::size_t body = find_body(c.f, after, noexcept_fn);
            if (body != npos && noexcept_fn) {
                regions.push_back(
                    {body, skip_balanced(c.f, body, "{", "}") - 1, "throw-in-destructor"});
            }
            continue;
        }
        // noexcept function: the specifier position is right after the
        // parameter list's `)` (possibly past cv-qualifiers / ref-quals).
        if (is_ident(t, "noexcept") && i > 0) {
            const token& p = c.tok(i - 1);
            const bool specifier_pos = is_punct(p, ")") || is_ident(p, "const") ||
                                       is_punct(p, "&") || is_ident(p, "final") ||
                                       is_ident(p, "override");
            if (!specifier_pos) continue;
            bool noexcept_fn = false;
            std::size_t body = find_body(c.f, i, noexcept_fn);
            if (body != npos && noexcept_fn) {
                regions.push_back(
                    {body, skip_balanced(c.f, body, "{", "}") - 1, "throw-in-noexcept"});
            }
        }
    }
    for (const body_region& r : regions) audit_region(c, r);
}

void rule_waiver_hygiene(file_ctx& c) {
    for (const waiver& w : c.f.waivers) {
        if (!w.has_reason) {
            c.report("waiver-without-reason", w.line,
                     "lint:allow(" + w.rule + ") without a reason — every waiver documents why "
                                              "(DESIGN.md §11)");
        }
    }
}

}  // namespace

void run_pattern_rules(const analysis_input& in, std::vector<finding>& out) {
    for (const lexed_file& f : in.files) {
        file_ctx c{f, out};
        rule_raw_rng(c);
        rule_naked_new(c);
        rule_mutex_in_lockfree(c);
        rule_double_seconds(c);
        rule_wallclock_in_replay(c);
        rule_sleep_in_fleet(c);
        rule_simd_outside_kernels(c);
        rule_raw_logging(c);
        rule_throw_audit(c);
        rule_waiver_hygiene(c);
    }
}

}  // namespace hawc::analyze
