// Lock rule family: recognise std::mutex acquisition scopes
// (lock_guard / unique_lock / scoped_lock / shared_lock and manual
// .lock()/.unlock()), build the inter-mutex acquisition-order graph, and
// report
//   lock-order            edges participating in an order cycle (the
//                         classic ABBA deadlock shape)
//   lock-across-parallel  a lock held across thread-pool fan-out
//                         (parallel_for / submit); the pool's lanes are
//                         shared, so a blocked lane can deadlock or stall
//                         every pole multiplexed onto it
//
// Mutex identity is token-level: the trailing identifier of the lock's
// argument expression, scoped per file (two files' `mutex_` members are
// distinct nodes). Edges are therefore only created where both
// acquisitions are lexically visible in one function — cross-TU inversion
// needs call-graph analysis and is out of scope (DESIGN.md §16 documents
// the limitation).

#include <algorithm>
#include <map>
#include <set>
#include <string_view>

#include "analyzer.hpp"

namespace hawc::analyze {
namespace {

bool is_guard_type(std::string_view name) {
    return name == "lock_guard" || name == "unique_lock" || name == "scoped_lock" ||
           name == "shared_lock";
}

struct held_lock {
    std::string mutex_key;   // file-scoped node name
    std::string guard_name;  // empty for manual .lock()
    int depth = 0;           // brace depth at acquisition
    bool active = true;      // false for defer_lock until .lock()
    int line = 0;
};

struct lock_edge {
    std::string from;  // held mutex
    std::string to;    // newly acquired mutex
    std::string file;
    int line = 0;      // acquisition site of `to`
    std::string to_short;
    std::string from_short;
};

struct lock_scan {
    const lexed_file& f;
    std::vector<lock_edge>& edges;
    std::vector<finding>& out;
    std::vector<held_lock> held;
    int depth = 0;

    std::string key(std::string_view name) const { return f.path + "#" + std::string{name}; }

    void acquire(const std::vector<std::string>& names, const std::string& guard, bool active,
                 int line, bool group_atomic) {
        // Edges from everything already held to each new mutex. A
        // scoped_lock's own group acquires atomically (std::scoped_lock
        // orders internally), so no edges within the group.
        for (const std::string& name : names) {
            if (active) {
                for (const held_lock& h : held) {
                    if (!h.active) continue;
                    if (group_atomic &&
                        std::find(names.begin(), names.end(),
                                  h.mutex_key.substr(h.mutex_key.find('#') + 1)) != names.end() &&
                        h.line == line) {
                        continue;  // same scoped_lock group
                    }
                    if (h.mutex_key == key(name)) continue;  // self edge: distinct objects
                    edges.push_back({h.mutex_key, key(name), f.path, line, name,
                                     h.mutex_key.substr(h.mutex_key.find('#') + 1)});
                }
            }
            held.push_back({key(name), guard, depth, active, line});
        }
    }

    void release_guard(std::string_view guard_or_mutex) {
        for (auto it = held.rbegin(); it != held.rend(); ++it) {
            if (it->guard_name == guard_or_mutex ||
                it->mutex_key == key(guard_or_mutex)) {
                it->active = false;
                return;
            }
        }
    }

    void reactivate_guard(std::string_view guard) {
        for (auto it = held.rbegin(); it != held.rend(); ++it) {
            if (it->guard_name == guard) {
                if (!it->active) {
                    it->active = true;
                    // re-acquisition creates order edges again
                    for (const held_lock& h : held) {
                        if (!h.active || h.mutex_key == it->mutex_key) continue;
                        edges.push_back({h.mutex_key, it->mutex_key, f.path, it->line,
                                         it->mutex_key.substr(it->mutex_key.find('#') + 1),
                                         h.mutex_key.substr(h.mutex_key.find('#') + 1)});
                    }
                }
                return;
            }
        }
    }

    bool any_active() const {
        return std::any_of(held.begin(), held.end(), [](const held_lock& h) { return h.active; });
    }

    // Parse one argument list of a guard declaration starting at the `(`
    // or `{` opener index; returns one past the closer and the trailing
    // identifier of each top-level argument.
    std::size_t parse_args(std::size_t i, std::vector<std::string>& names, bool& deferred) {
        const std::string open{f.tokens[i].text};
        const std::string close = open == "(" ? ")" : "}";
        int d = 0;
        std::string last_ident;
        auto flush = [&] {
            if (!last_ident.empty() && last_ident != "adopt_lock" && last_ident != "defer_lock" &&
                last_ident != "try_to_lock") {
                names.push_back(last_ident);
            }
            if (last_ident == "defer_lock") deferred = true;
            last_ident.clear();
        };
        for (; i < f.tokens.size(); ++i) {
            const token& t = f.tokens[i];
            if (is_punct(t, open)) {
                ++d;
                continue;
            }
            if (is_punct(t, close)) {
                if (--d == 0) {
                    flush();
                    return i + 1;
                }
                continue;
            }
            if (is_punct(t, ",") && d == 1) {
                flush();
                continue;
            }
            if (t.kind == token_kind::identifier && d == 1) last_ident = t.text;
        }
        flush();
        return i;
    }

    void run() {
        const auto& toks = f.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const token& t = toks[i];
            if (is_punct(t, "{")) {
                ++depth;
                continue;
            }
            if (is_punct(t, "}")) {
                --depth;
                held.erase(std::remove_if(held.begin(), held.end(),
                                          [&](const held_lock& h) { return h.depth > depth; }),
                           held.end());
                continue;
            }
            if (t.kind != token_kind::identifier) continue;

            // guard declaration: [std ::] guard_type [<...>] name ( args ) | { args }
            if (is_guard_type(t.text)) {
                std::size_t j = i + 1;
                if (j < toks.size() && is_punct(toks[j], "<")) {
                    int d = 0;
                    for (; j < toks.size(); ++j) {
                        if (is_punct(toks[j], "<")) ++d;
                        if (is_punct(toks[j], ">") && --d == 0) {
                            ++j;
                            break;
                        }
                    }
                }
                if (j + 1 < toks.size() && toks[j].kind == token_kind::identifier &&
                    (is_punct(toks[j + 1], "(") || is_punct(toks[j + 1], "{"))) {
                    std::string guard = toks[j].text;
                    std::vector<std::string> names;
                    bool deferred = false;
                    std::size_t after = parse_args(j + 1, names, deferred);
                    acquire(names, guard, !deferred, toks[j].line,
                            /*group_atomic=*/t.text == "scoped_lock");
                    i = after - 1;
                }
                continue;
            }

            // manual lock()/unlock(): expr . lock ( ) — expr's trailing
            // identifier two tokens back
            if ((t.text == "lock" || t.text == "unlock") && i >= 2 &&
                (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
                toks[i - 2].kind == token_kind::identifier && i + 1 < toks.size() &&
                is_punct(toks[i + 1], "(")) {
                const std::string& target = toks[i - 2].text;
                if (t.text == "unlock") {
                    release_guard(target);
                } else {
                    bool was_guard = std::any_of(held.begin(), held.end(), [&](const held_lock& h) {
                        return h.guard_name == target;
                    });
                    if (was_guard) {
                        reactivate_guard(target);
                    } else {
                        acquire({target}, "", true, t.line, false);
                    }
                }
                continue;
            }

            // fan-out under a lock
            if ((t.text == "parallel_for" || t.text == "submit") && i + 1 < toks.size() &&
                is_punct(toks[i + 1], "(") && any_active()) {
                std::string held_names;
                for (const held_lock& h : held) {
                    if (!h.active) continue;
                    if (!held_names.empty()) held_names += ", ";
                    held_names += h.mutex_key.substr(h.mutex_key.find('#') + 1);
                }
                out.push_back({"lock-across-parallel", f.path, t.line,
                               t.text + "() called while holding [" + held_names +
                                   "] — fan-out under a lock can deadlock the shared pool lanes",
                               false, false});
            }
        }
    }
};

}  // namespace

void run_lock_rules(const analysis_input& in, std::vector<finding>& out) {
    std::vector<lock_edge> edges;
    for (const lexed_file& f : in.files) {
        lock_scan scan{f, edges, out, {}, 0};
        scan.run();
    }

    // Tarjan-free SCC via Kosaraju on the (small) mutex graph.
    std::map<std::string, std::vector<std::string>> fwd;
    std::map<std::string, std::vector<std::string>> rev;
    std::set<std::string> nodes;
    for (const lock_edge& e : edges) {
        fwd[e.from].push_back(e.to);
        rev[e.to].push_back(e.from);
        nodes.insert(e.from);
        nodes.insert(e.to);
    }
    std::vector<std::string> order;
    std::set<std::string> visited;
    // iterative post-order
    for (const std::string& start : nodes) {
        if (visited.count(start)) continue;
        std::vector<std::pair<std::string, bool>> stack{{start, false}};
        while (!stack.empty()) {
            auto [node, processed] = stack.back();
            stack.pop_back();
            if (processed) {
                order.push_back(node);
                continue;
            }
            if (!visited.insert(node).second) continue;
            stack.push_back({node, true});
            for (const std::string& next : fwd[node]) {
                if (!visited.count(next)) stack.push_back({next, false});
            }
        }
    }
    std::map<std::string, int> component;
    int comp = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        if (component.count(*it)) continue;
        std::vector<std::string> stack{*it};
        while (!stack.empty()) {
            std::string node = stack.back();
            stack.pop_back();
            if (component.count(node)) continue;
            component[node] = comp;
            for (const std::string& prev : rev[node]) {
                if (!component.count(prev)) stack.push_back(prev);
            }
        }
        ++comp;
    }
    std::map<int, int> comp_size;
    for (const auto& [node, c] : component) ++comp_size[c];

    std::set<std::string> reported;  // dedupe per edge
    for (const lock_edge& e : edges) {
        const int cf = component[e.from];
        if (cf != component[e.to]) continue;
        const bool self_loop = e.from == e.to;
        if (comp_size[cf] < 2 && !self_loop) continue;
        if (!reported.insert(e.from + ">" + e.to).second) continue;
        std::set<std::string> members;
        for (const auto& [node, c] : component) {
            if (c == cf) members.insert(node.substr(node.find('#') + 1));
        }
        std::string cycle;
        for (const std::string& m : members) {
            if (!cycle.empty()) cycle += ", ";
            cycle += m;
        }
        out.push_back({"lock-order", e.file, e.line,
                       "acquiring '" + e.to_short + "' while holding '" + e.from_short +
                           "' participates in a lock-order cycle among {" + cycle + "}",
                       false, false});
    }
}

}  // namespace hawc::analyze
