// Graph rule family: the module-layer DAG over the src/ include graph,
// file-level include-cycle detection, and the replay determinism audit
// over everything reachable from the replay entry points.
//
// The layer order is not duplicated here: it is parsed from the
// hawc_module(<name> <deps...>) declarations in src/CMakeLists.txt, so
// the analyzer and the build agree on one source of truth. A module may
// include headers of itself and of its transitive dependencies; any
// other edge is an upward include and a finding.

#include <algorithm>
#include <map>
#include <set>
#include <string_view>

#include "analyzer.hpp"

namespace hawc::analyze {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// "src/nn/kernels/x.cpp" -> "nn"; empty when not under src/ or not in a
/// module subdirectory.
std::string module_of(std::string_view path) {
    if (!starts_with(path, "src/")) return {};
    std::string_view rest = path.substr(4);
    std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos) return {};
    return std::string{rest.substr(0, slash)};
}

struct include_edge {
    std::string spec;  // the quoted include text, e.g. "common/rng.hpp"
    int line = 0;
};

/// Quoted includes of a file, from its pp_directive tokens.
std::vector<include_edge> quoted_includes(const lexed_file& f) {
    std::vector<include_edge> out;
    for (const token& t : f.tokens) {
        if (t.kind != token_kind::pp_directive) continue;
        if (!starts_with(t.text, "#include")) continue;
        std::size_t open = t.text.find('"');
        if (open == std::string::npos) continue;
        std::size_t close = t.text.find('"', open + 1);
        if (close == std::string::npos) continue;
        out.push_back({t.text.substr(open + 1, close - open - 1), t.line});
    }
    return out;
}

struct graph_ctx {
    const analysis_input& in;
    std::vector<finding>& out;
    std::map<std::string, std::size_t> by_path;          // path -> file index
    std::vector<std::vector<std::size_t>> adj;           // src-file include graph
    std::vector<std::vector<include_edge>> includes;     // per file

    explicit graph_ctx(const analysis_input& input, std::vector<finding>& findings)
        : in{input}, out{findings} {
        for (std::size_t i = 0; i < in.files.size(); ++i) by_path[in.files[i].path] = i;
        adj.resize(in.files.size());
        includes.resize(in.files.size());
        for (std::size_t i = 0; i < in.files.size(); ++i) {
            includes[i] = quoted_includes(in.files[i]);
            for (const include_edge& e : includes[i]) {
                // Quoted includes resolve against src/ (the project include
                // root) with a same-directory fallback.
                std::string from_src = "src/" + e.spec;
                auto it = by_path.find(from_src);
                if (it == by_path.end()) {
                    std::string dir{in.files[i].path};
                    std::size_t slash = dir.rfind('/');
                    if (slash != std::string::npos) {
                        it = by_path.find(dir.substr(0, slash + 1) + e.spec);
                    }
                }
                if (it != by_path.end()) adj[i].push_back(it->second);
            }
        }
    }
};

// --- module-layer DAG ------------------------------------------------------

void rule_layer_dag(graph_ctx& g) {
    for (std::size_t i = 0; i < g.in.files.size(); ++i) {
        const lexed_file& f = g.in.files[i];
        std::string mod = module_of(f.path);
        if (mod.empty()) continue;
        auto closure_it = g.in.module_closure.find(mod);
        if (closure_it == g.in.module_closure.end()) {
            g.out.push_back({"layer-dag", f.path, 1,
                             "module '" + mod + "' is not declared by any hawc_module() in "
                                                "src/CMakeLists.txt",
                             false, false});
            continue;
        }
        for (const include_edge& e : g.includes[i]) {
            std::size_t slash = e.spec.find('/');
            if (slash == std::string::npos) continue;
            std::string target = e.spec.substr(0, slash);
            if (g.in.module_closure.find(target) == g.in.module_closure.end()) {
                continue;  // not a module-qualified include (local header etc.)
            }
            if (target == mod) continue;
            if (closure_it->second.count(target) == 0) {
                std::string allowed;
                for (const std::string& d : closure_it->second) {
                    if (!allowed.empty()) allowed += ", ";
                    allowed += d;
                }
                g.out.push_back(
                    {"layer-dag", f.path, e.line,
                     "include of \"" + e.spec + "\" — module '" + mod +
                         "' may not depend on '" + target + "' (declared deps: " +
                         (allowed.empty() ? std::string{"none"} : allowed) + "); the layer order "
                         "flows common -> ... -> runtime -> replay -> obs -> fleet",
                     false, false});
            }
        }
    }
}

// --- include cycles --------------------------------------------------------

void rule_include_cycles(graph_ctx& g) {
    const std::size_t n = g.in.files.size();
    // Iterative coloured DFS; each back edge yields a cycle. Cycles are
    // normalised (rotated so the lexicographically-smallest path leads)
    // and deduplicated so one cycle is one finding.
    std::vector<int> colour(n, 0);  // 0 white, 1 grey, 2 black
    std::vector<std::size_t> stack;
    std::set<std::vector<std::size_t>> seen;

    // order roots by path for deterministic output
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return g.in.files[a].path < g.in.files[b].path; });

    struct frame {
        std::size_t node;
        std::size_t next_child = 0;
    };
    for (std::size_t root : order) {
        if (colour[root] != 0) continue;
        std::vector<frame> frames{{root}};
        colour[root] = 1;
        stack.push_back(root);
        while (!frames.empty()) {
            frame& fr = frames.back();
            if (fr.next_child < g.adj[fr.node].size()) {
                std::size_t child = g.adj[fr.node][fr.next_child++];
                if (colour[child] == 0) {
                    colour[child] = 1;
                    stack.push_back(child);
                    frames.push_back({child});
                } else if (colour[child] == 1) {
                    // back edge: cycle = stack suffix from child
                    auto it = std::find(stack.begin(), stack.end(), child);
                    std::vector<std::size_t> cycle{it, stack.end()};
                    auto smallest = std::min_element(
                        cycle.begin(), cycle.end(), [&](std::size_t a, std::size_t b) {
                            return g.in.files[a].path < g.in.files[b].path;
                        });
                    std::rotate(cycle.begin(), smallest, cycle.end());
                    if (seen.insert(cycle).second) {
                        std::string chain;
                        for (std::size_t idx : cycle) chain += g.in.files[idx].path + " -> ";
                        chain += g.in.files[cycle.front()].path;
                        // witness line: the include in cycle[0] that reaches
                        // cycle[1] (or itself for a self-include)
                        std::size_t head = cycle.front();
                        std::size_t next = cycle.size() > 1 ? cycle[1] : head;
                        int line = 1;
                        for (std::size_t k = 0; k < g.adj[head].size(); ++k) {
                            if (g.adj[head][k] == next) {
                                line = g.includes[head][k].line;
                                break;
                            }
                        }
                        g.out.push_back({"include-cycle", g.in.files[head].path, line,
                                         "include cycle: " + chain, false, false});
                    }
                }
            } else {
                colour[fr.node] = 2;
                stack.pop_back();
                frames.pop_back();
            }
        }
    }
}

// --- replay determinism ----------------------------------------------------

void rule_replay_determinism(graph_ctx& g) {
    const std::size_t n = g.in.files.size();
    // Scope: everything include-reachable from src/replay entry points,
    // plus all of src/sim (scene generation feeds recorded corpora), minus
    // src/replay itself — the stricter wallclock-in-replay rule owns that
    // directory.
    std::vector<char> in_scope(n, 0);
    std::vector<std::size_t> work;
    for (std::size_t i = 0; i < n; ++i) {
        if (starts_with(g.in.files[i].path, "src/replay/") ||
            starts_with(g.in.files[i].path, "src/sim/")) {
            in_scope[i] = 1;
            work.push_back(i);
        }
    }
    while (!work.empty()) {
        std::size_t f = work.back();
        work.pop_back();
        for (std::size_t child : g.adj[f]) {
            if (!in_scope[child]) {
                in_scope[child] = 1;
                work.push_back(child);
            }
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (!in_scope[i]) continue;
        const lexed_file& f = g.in.files[i];
        if (starts_with(f.path, "src/replay/")) continue;
        auto report = [&](int line, std::string msg) {
            g.out.push_back({"replay-determinism", f.path, line, std::move(msg), false, false});
        };

        // Names declared as unordered containers in this file; iterating
        // one in a range-for feeds hash-order into whatever consumes it.
        std::set<std::string> unordered_names;
        const auto& toks = f.tokens;
        for (std::size_t t = 0; t < toks.size(); ++t) {
            if (toks[t].kind != token_kind::identifier) continue;
            const std::string& name = toks[t].text;
            if (name == "unordered_map" || name == "unordered_set" ||
                name == "unordered_multimap" || name == "unordered_multiset") {
                std::size_t j = t + 1;
                if (j < toks.size() && is_punct(toks[j], "<")) {
                    int depth = 0;
                    for (; j < toks.size(); ++j) {
                        if (is_punct(toks[j], "<")) ++depth;
                        if (is_punct(toks[j], ">") && --depth == 0) {
                            ++j;
                            break;
                        }
                    }
                }
                if (j < toks.size() && toks[j].kind == token_kind::identifier) {
                    unordered_names.insert(toks[j].text);
                }
            }
        }

        for (std::size_t t = 0; t < toks.size(); ++t) {
            const token& tok = toks[t];
            if (tok.kind != token_kind::identifier) continue;
            if (tok.text == "system_clock" || tok.text == "localtime" || tok.text == "gmtime" ||
                tok.text == "gettimeofday" || tok.text == "clock_gettime") {
                report(tok.line, tok.text + " — wall-clock/date nondeterminism in code reachable "
                                            "from replay (src/sim or the replay include closure)");
            } else if ((tok.text == "time" || tok.text == "getenv") && t + 1 < toks.size() &&
                       is_punct(toks[t + 1], "(")) {
                report(tok.line, tok.text + "() — host-state nondeterminism in code reachable "
                                            "from replay");
            } else if (tok.text == "for" && t + 1 < toks.size() && is_punct(toks[t + 1], "(") &&
                       !unordered_names.empty()) {
                // range-for over an unordered container declared in this file
                int depth = 0;
                std::size_t colon = 0;
                for (std::size_t j = t + 1; j < toks.size(); ++j) {
                    if (is_punct(toks[j], "(")) ++depth;
                    if (is_punct(toks[j], ")") && --depth == 0) break;
                    if (is_punct(toks[j], ":") && depth == 1) {
                        colon = j;
                        break;
                    }
                }
                if (colon == 0) continue;
                int depth2 = 1;
                for (std::size_t j = colon + 1; j < toks.size() && depth2 > 0; ++j) {
                    if (is_punct(toks[j], "(")) ++depth2;
                    if (is_punct(toks[j], ")")) --depth2;
                    if (depth2 >= 1 && toks[j].kind == token_kind::identifier &&
                        unordered_names.count(toks[j].text) != 0) {
                        report(toks[j].line,
                               "range-for over unordered container '" + toks[j].text +
                                   "' — hash iteration order is nondeterministic and must not "
                                   "feed replayed output");
                        break;
                    }
                }
            }
        }
    }
}

}  // namespace

void run_graph_rules(const analysis_input& in, std::vector<finding>& out) {
    graph_ctx g{in, out};
    rule_layer_dag(g);
    rule_include_cycles(g);
    rule_replay_determinism(g);
}

std::map<std::string, std::vector<std::string>> parse_module_table(std::string_view cmake_text) {
    std::map<std::string, std::vector<std::string>> table;
    std::size_t pos = 0;
    while (pos < cmake_text.size()) {
        std::size_t eol = cmake_text.find('\n', pos);
        if (eol == std::string_view::npos) eol = cmake_text.size();
        std::string_view line = cmake_text.substr(pos, eol - pos);
        pos = eol + 1;
        std::size_t b = line.find_first_not_of(" \t");
        if (b == std::string_view::npos) continue;
        line = line.substr(b);
        if (!starts_with(line, "hawc_module(")) continue;
        std::size_t close = line.find(')');
        if (close == std::string_view::npos) continue;
        std::string_view args = line.substr(12, close - 12);
        std::vector<std::string> words;
        std::size_t i = 0;
        while (i < args.size()) {
            while (i < args.size() && (args[i] == ' ' || args[i] == '\t')) ++i;
            std::size_t start = i;
            while (i < args.size() && args[i] != ' ' && args[i] != '\t') ++i;
            if (i > start) words.emplace_back(args.substr(start, i - start));
        }
        if (words.empty()) continue;
        std::string name = words.front();
        words.erase(words.begin());
        table[name] = std::move(words);
    }
    return table;
}

std::map<std::string, std::set<std::string>> module_transitive_closure(
    const std::map<std::string, std::vector<std::string>>& deps) {
    std::map<std::string, std::set<std::string>> closure;
    // Repeated relaxation; the table is tiny and possibly (erroneously)
    // cyclic, so a fixed-point loop is the robust choice.
    for (const auto& [name, direct] : deps) {
        closure[name] = std::set<std::string>{direct.begin(), direct.end()};
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto& [name, set] : closure) {
            std::set<std::string> add;
            for (const std::string& dep : set) {
                auto it = closure.find(dep);
                if (it == closure.end()) continue;
                for (const std::string& d : it->second) {
                    if (set.count(d) == 0) add.insert(d);
                }
            }
            if (!add.empty()) {
                set.insert(add.begin(), add.end());
                changed = true;
            }
        }
    }
    return closure;
}

}  // namespace hawc::analyze
