// Fixture self-test (the `analyze.self_test` ctest, also run by
// scripts/lint.sh --self-test). The linter is itself under test:
//
//   tests/lint/tree_bad    a synthetic mini source tree where every rule
//                          has at least one deliberate violation, each
//                          marked with a `lint:expect(rule)` comment on
//                          the offending line. The analyzer's non-waived
//                          findings must match the markers EXACTLY — a
//                          missing finding is a dead rule, an unexpected
//                          one is a false positive.
//   tests/lint/tree_clean  near-miss spellings, correctly-waived hits,
//                          and benign graph shapes; zero active findings
//                          allowed, and the waivers must actually have
//                          been consumed (proving the waiver machinery
//                          saw real hits).
//
// On top of the two trees: every rule in the catalogue must be pinned by
// some expect marker, and the baseline round-trip (write, re-run) must
// suppress every tree_bad finding.

#include <cstdio>
#include <filesystem>
#include <set>

#include "analyzer.hpp"

namespace hawc::analyze {
namespace fs = std::filesystem;
namespace {

std::string site(const std::string& rule, const std::string& file, int line) {
    return file + ":" + std::to_string(line) + " [" + rule + "]";
}

}  // namespace

int run_self_test(const fs::path& fixtures_dir) {
    int failures = 0;
    auto fail = [&](const std::string& msg) {
        std::printf("self-test FAIL: %s\n", msg.c_str());
        ++failures;
    };

    // --- tree_bad: exact expect/finding agreement --------------------------
    analysis_options bad_opts;
    bad_opts.root = fixtures_dir / "tree_bad";
    if (!fs::is_directory(bad_opts.root)) {
        fail("missing fixture tree " + bad_opts.root.string());
        return 1;
    }
    analysis_result bad = analyze(bad_opts);
    for (const std::string& e : bad.errors) fail("tree_bad: " + e);

    std::set<std::string> expected;
    std::set<std::string> expected_rules;
    for (const expect_site& e : bad.expects) {
        expected.insert(site(e.rule, e.file, e.line));
        expected_rules.insert(e.rule);
    }
    std::set<std::string> found;
    for (const finding& f : bad.findings) {
        if (f.waived) continue;
        found.insert(site(f.rule, f.file, f.line));
    }
    for (const std::string& s : expected) {
        if (found.count(s) == 0) fail("rule went dead: expected finding not reported at " + s);
    }
    for (const std::string& s : found) {
        if (expected.count(s) == 0) fail("false positive: unexpected finding at " + s);
    }

    // --- every catalogued rule is pinned -----------------------------------
    for (const auto& [rule, desc] : rule_catalogue()) {
        if (expected_rules.count(rule) == 0) {
            fail("rule '" + rule + "' has no lint:expect fixture in tree_bad (" + desc + ")");
        }
    }

    // --- tree_clean: no active findings, waivers consumed ------------------
    analysis_options clean_opts;
    clean_opts.root = fixtures_dir / "tree_clean";
    if (!fs::is_directory(clean_opts.root)) {
        fail("missing fixture tree " + clean_opts.root.string());
        return 1;
    }
    analysis_result clean = analyze(clean_opts);
    for (const std::string& e : clean.errors) fail("tree_clean: " + e);
    for (const finding& f : clean.findings) {
        if (!f.waived) {
            fail("clean fixture flagged: " + site(f.rule, f.file, f.line) + ": " + f.message);
        }
    }
    if (clean.waived == 0) {
        fail("tree_clean produced no waived findings — the waiver fixtures went dead");
    }

    // --- baseline round-trip ------------------------------------------------
    fs::path tmp = fs::temp_directory_path() / "hawc_analyze_selftest_baseline.txt";
    write_baseline_file(tmp, bad.findings);
    analysis_options rerun = bad_opts;
    rerun.baseline = tmp;
    analysis_result suppressed = analyze(rerun);
    if (suppressed.active != 0) {
        fail("baseline round-trip left " + std::to_string(suppressed.active) +
             " finding(s) active");
    }
    if (suppressed.baselined == 0) {
        fail("baseline round-trip suppressed nothing");
    }
    std::error_code ec;
    fs::remove(tmp, ec);

    if (failures == 0) {
        std::printf("hawc_analyze self-test OK: %zu finding(s) pinned across %zu+%zu files, "
                    "%zu rules exercised\n",
                    expected.size(), bad.files_analyzed, clean.files_analyzed,
                    expected_rules.size());
        return 0;
    }
    std::printf("hawc_analyze self-test: %d failure(s)\n", failures);
    return 1;
}

}  // namespace hawc::analyze
