// Driver: collect the tree, lex every file once, run the three rule
// families, then apply waivers and the baseline.

#include "analyzer.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace hawc::analyze {
namespace fs = std::filesystem;

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<std::string> read_file(const fs::path& p) {
    std::ifstream in{p, std::ios::binary};
    if (!in) return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return std::move(ss).str();
}

std::string generic_rel(const fs::path& p, const fs::path& root) {
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    if (ec || rel.empty()) return p.generic_string();
    return rel.generic_string();
}

bool analyzable_extension(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp";
}

/// Analyzed directories under the root. tests/lint holds deliberately
/// broken fixtures and is always excluded from the real walk.
bool excluded(std::string_view rel) {
    return starts_with(rel, "tests/lint/") || starts_with(rel, "build") ||
           starts_with(rel, ".git/") || starts_with(rel, "data/");
}

}  // namespace

std::string finding_key(const finding& f) {
    return f.rule + "|" + f.file + "|" + f.message;
}

const std::map<std::string, std::string>& rule_catalogue() {
    static const std::map<std::string, std::string> catalogue{
        {"raw-rng", "rand()/srand()/std::random_device outside common/rng"},
        {"naked-new", "naked new/delete expressions (RAII only)"},
        {"mutex-in-lockfree", "std::mutex in a file whose banner claims lock-freedom"},
        {"double-seconds", "duration<double|float> timing outside common/timer.hpp"},
        {"wallclock-in-replay", "any clock read inside src/replay"},
        {"sleep-in-fleet", "blocking sleeps inside src/fleet (tick virtual time)"},
        {"simd-outside-kernels", "raw SIMD intrinsics outside src/nn/kernels"},
        {"raw-logging", "stdio logging in src/ outside src/obs"},
        {"layer-dag", "module include violating the declared layer order"},
        {"include-cycle", "cyclic quoted-include chain in src/"},
        {"replay-determinism",
         "wall-clock/host-state/hash-order nondeterminism reachable from replay"},
        {"lock-order", "inter-mutex acquisition-order cycle (ABBA deadlock shape)"},
        {"lock-across-parallel", "lock held across thread-pool fan-out"},
        {"throw-in-noexcept", "throw path inside a noexcept function"},
        {"throw-in-destructor", "throw path inside a (default-noexcept) destructor"},
        {"waiver-without-reason", "lint:allow() without the mandatory reason"},
    };
    return catalogue;
}

std::set<std::string> load_baseline(const fs::path& path, std::vector<std::string>& errors) {
    std::set<std::string> keys;
    std::ifstream in{path};
    if (!in) {
        errors.push_back("cannot read baseline file: " + path.string());
        return keys;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        keys.insert(line);
    }
    return keys;
}

void write_baseline_file(const fs::path& path, const std::vector<finding>& findings) {
    std::ofstream out{path, std::ios::trunc};
    out << "# hawc_analyze baseline: grandfathered findings, one `rule|file|message`\n"
           "# per line. Regenerate with `hawc_analyze --write-baseline`; shrink it\n"
           "# whenever a finding is fixed. New findings never belong here without a\n"
           "# review (DESIGN.md §16).\n";
    std::set<std::string> keys;
    for (const finding& f : findings) {
        if (!f.waived) keys.insert(finding_key(f));
    }
    for (const std::string& k : keys) out << k << '\n';
}

analysis_result analyze(const analysis_options& opts) {
    analysis_result result;
    analysis_input input;
    input.root = opts.root;

    // --- collect files -----------------------------------------------------
    std::set<std::string> rel_paths;
    for (const char* top : {"src", "tools", "bench", "examples", "tests"}) {
        fs::path dir = opts.root / top;
        if (!fs::is_directory(dir)) continue;
        for (const auto& entry : fs::recursive_directory_iterator{dir}) {
            if (!entry.is_regular_file() || !analyzable_extension(entry.path())) continue;
            std::string rel = generic_rel(entry.path(), opts.root);
            if (!excluded(rel)) rel_paths.insert(std::move(rel));
        }
    }
    if (opts.compile_db) {
        for (const fs::path& p : compile_db_files(*opts.compile_db, result.errors)) {
            if (!analyzable_extension(p) || !fs::exists(p)) continue;
            std::string rel = generic_rel(fs::weakly_canonical(p), fs::weakly_canonical(opts.root));
            if (starts_with(rel, "..") || excluded(rel)) continue;
            rel_paths.insert(std::move(rel));
        }
    }
    if (!opts.only_paths.empty()) {
        std::set<std::string> filtered;
        for (const std::string& rel : rel_paths) {
            for (const std::string& prefix : opts.only_paths) {
                if (starts_with(rel, prefix)) {
                    filtered.insert(rel);
                    break;
                }
            }
        }
        rel_paths = std::move(filtered);
    }

    for (const std::string& rel : rel_paths) {
        std::optional<std::string> text = read_file(opts.root / rel);
        if (!text) {
            result.errors.push_back("cannot read " + rel);
            continue;
        }
        input.files.push_back(lex(*text, rel));
    }
    result.files_analyzed = input.files.size();
    for (const lexed_file& f : input.files) {
        for (const expectation& e : f.expects) result.expects.push_back({f.path, e.line, e.rule});
    }

    // --- module layer table ------------------------------------------------
    const fs::path cmake = opts.root / "src" / "CMakeLists.txt";
    if (std::optional<std::string> text = read_file(cmake)) {
        input.module_deps = parse_module_table(*text);
        input.module_closure = module_transitive_closure(input.module_deps);
    } else if (std::any_of(input.files.begin(), input.files.end(), [](const lexed_file& f) {
                   return starts_with(f.path, "src/");
               })) {
        result.errors.push_back("cannot read " + cmake.string() +
                                " (required for the layer-dag rule)");
    }

    // --- rules -------------------------------------------------------------
    std::vector<finding> findings;
    run_pattern_rules(input, findings);
    run_graph_rules(input, findings);
    run_lock_rules(input, findings);

    // --- dedupe per (rule, file, line), keep the first message --------------
    std::set<std::string> seen;
    std::vector<finding> deduped;
    for (finding& f : findings) {
        std::string id = f.rule + "|" + f.file + "|" + std::to_string(f.line);
        if (seen.insert(std::move(id)).second) deduped.push_back(std::move(f));
    }

    // --- waivers -----------------------------------------------------------
    std::map<std::string, const lexed_file*> by_path;
    for (const lexed_file& f : input.files) by_path[f.path] = &f;
    for (finding& f : deduped) {
        if (f.rule == "waiver-without-reason") continue;  // hygiene is not waivable
        const lexed_file* lf = by_path[f.file];
        if (lf == nullptr) continue;
        for (const waiver& w : lf->waivers) {
            if (w.rule == f.rule && w.line == f.line) {
                f.waived = true;
                break;
            }
        }
    }

    // --- baseline ----------------------------------------------------------
    std::optional<fs::path> baseline = opts.baseline;
    if (!baseline) {
        fs::path def = opts.root / "tools" / "hawc_analyze" / "baseline.txt";
        if (fs::exists(def)) baseline = def;
    }
    if (opts.write_baseline && baseline) {
        write_baseline_file(*baseline, deduped);
    }
    if (baseline && fs::exists(*baseline)) {
        std::set<std::string> keys = load_baseline(*baseline, result.errors);
        for (finding& f : deduped) {
            if (!f.waived && keys.count(finding_key(f)) != 0) f.baselined = true;
        }
    }

    std::sort(deduped.begin(), deduped.end(), [](const finding& a, const finding& b) {
        if (a.file != b.file) return a.file < b.file;
        if (a.line != b.line) return a.line < b.line;
        return a.rule < b.rule;
    });
    for (const finding& f : deduped) {
        if (f.waived) {
            ++result.waived;
        } else if (f.baselined) {
            ++result.baselined;
        } else {
            ++result.active;
        }
    }
    result.findings = std::move(deduped);
    return result;
}

}  // namespace hawc::analyze
