#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace hawc::analyze {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

std::string trim(std::string_view s) {
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string_view::npos) return {};
    std::size_t e = s.find_last_not_of(" \t\r");
    return std::string{s.substr(b, e - b + 1)};
}

// Case-insensitive substring search requiring a non-alphanumeric left
// boundary, so a claim of "lock-free" matches but "deadlock-free" does not.
bool contains_word_ci(std::string_view hay, std::string_view needle) {
    auto begin = hay.begin();
    for (;;) {
        auto it = std::search(begin, hay.end(), needle.begin(), needle.end(),
                              [](char a, char b) {
                                  return std::tolower(static_cast<unsigned char>(a)) ==
                                         std::tolower(static_cast<unsigned char>(b));
                              });
        if (it == hay.end()) return false;
        if (it == hay.begin() ||
            !std::isalnum(static_cast<unsigned char>(*(it - 1)))) {
            return true;
        }
        begin = it + 1;
    }
}

// Splice-removed source plus a physical-line map per character. Raw-string
// contents are spliced too, which is harmless here: the lexer only skips
// over them and line attribution stays exact.
struct spliced_source {
    std::string text;
    std::vector<int> line;  // line.size() == text.size()
    int last_line = 1;
};

spliced_source remove_splices(std::string_view src) {
    spliced_source out;
    out.text.reserve(src.size());
    out.line.reserve(src.size());
    int line = 1;
    for (std::size_t i = 0; i < src.size();) {
        if (src[i] == '\\') {
            std::size_t j = i + 1;
            if (j < src.size() && src[j] == '\r') ++j;
            if (j < src.size() && src[j] == '\n') {
                i = j + 1;
                ++line;
                continue;
            }
        }
        out.text.push_back(src[i]);
        out.line.push_back(line);
        if (src[i] == '\n') ++line;
        ++i;
    }
    out.last_line = line;
    return out;
}

// Scan a comment's text for the in-band annotations. `base_line` is the
// line of the comment's first character; markers inside a multi-line
// block comment are attributed to the line they actually sit on.
void scan_comment(std::string_view text, int base_line, lexed_file& out) {
    if (contains_word_ci(text, "lock-free") || contains_word_ci(text, "lock_free")) {
        out.claims_lockfree = true;
    }
    for (const char* marker : {"lint:allow(", "lint:expect("}) {
        const bool allow = marker[5] == 'a';
        std::size_t pos = 0;
        while ((pos = text.find(marker, pos)) != std::string_view::npos) {
            const int line =
                base_line + static_cast<int>(std::count(text.begin(),
                                                        text.begin() + static_cast<long>(pos), '\n'));
            std::size_t open = pos + std::string_view{marker}.size();
            std::size_t close = text.find(')', open);
            pos = open;
            if (close == std::string_view::npos) continue;
            std::string rule = trim(text.substr(open, close - open));
            if (rule.empty()) continue;
            if (allow) {
                waiver w;
                w.line = line;
                w.rule = rule;
                std::size_t after = close + 1;
                while (after < text.size() && (text[after] == ' ' || text[after] == '\t')) ++after;
                if (after < text.size() && text[after] == ':') {
                    std::size_t eol = text.find('\n', after);
                    std::string reason = trim(text.substr(
                        after + 1, (eol == std::string_view::npos ? text.size() : eol) - after - 1));
                    w.has_reason = !reason.empty();
                }
                out.waivers.push_back(std::move(w));
            } else {
                out.expects.push_back({line, std::move(rule)});
            }
        }
    }
}

struct scanner {
    const spliced_source& src;
    lexed_file& out;
    std::size_t i = 0;
    bool bol = true;  // only whitespace seen since the last newline

    char cur() const { return src.text[i]; }
    char peek(std::size_t k = 1) const {
        return i + k < src.text.size() ? src.text[i + k] : '\0';
    }
    bool done() const { return i >= src.text.size(); }
    int line_here() const { return src.line[i]; }

    void emit(token_kind kind, std::string text, int line) {
        out.tokens.push_back({kind, std::move(text), line});
    }

    void line_comment() {
        std::size_t start = i;
        int line = line_here();
        while (!done() && cur() != '\n') ++i;
        scan_comment(std::string_view{src.text}.substr(start, i - start), line, out);
    }

    void block_comment() {
        std::size_t start = i;
        int line = line_here();
        i += 2;  // consume /*
        // Block comments do not nest in C++: the first */ ends the comment
        // (the lexer golden tests pin this).
        while (!done()) {
            if (cur() == '*' && peek() == '/') {
                i += 2;
                break;
            }
            ++i;
        }
        scan_comment(std::string_view{src.text}.substr(start, i - start), line, out);
    }

    // Ordinary string/char literal starting at the quote character.
    void quoted(char quote, token_kind kind) {
        int line = line_here();
        std::size_t start = ++i;  // past the opening quote
        while (!done() && cur() != quote && cur() != '\n') {
            if (cur() == '\\' && i + 1 < src.text.size()) ++i;
            ++i;
        }
        std::string text{std::string_view{src.text}.substr(start, i - start)};
        if (!done() && cur() == quote) ++i;
        emit(kind, std::move(text), line);
    }

    // Raw string literal; `i` is at the opening quote after the R prefix.
    void raw_string(int line) {
        ++i;  // past "
        std::size_t dstart = i;
        while (!done() && cur() != '(') ++i;
        std::string delim{std::string_view{src.text}.substr(dstart, i - dstart)};
        if (!done()) ++i;  // past (
        std::string close = ")" + delim + "\"";
        std::size_t end = src.text.find(close, i);
        std::size_t text_end = end == std::string::npos ? src.text.size() : end;
        std::string text{std::string_view{src.text}.substr(i, text_end - i)};
        i = end == std::string::npos ? src.text.size() : end + close.size();
        emit(token_kind::string_lit, std::move(text), line);
    }

    // One whole logical preprocessor line (splices already removed).
    // Returns the trimmed directive text.
    std::string pp_line() {
        std::size_t start = i;
        int line = line_here();
        while (!done() && cur() != '\n') {
            // A // comment ends the directive's meaningful text; /* ... */
            // inside a directive is skipped (it cannot span lines after
            // splicing, and if unterminated it swallows the rest — fine
            // for lint purposes).
            if (cur() == '/' && peek() == '/') break;
            if (cur() == '/' && peek() == '*') {
                std::size_t save = i;
                i += 2;
                while (!done() && !(cur() == '*' && peek() == '/')) ++i;
                if (!done()) i += 2;
                scan_comment(std::string_view{src.text}.substr(save, i - save), line, out);
                continue;
            }
            ++i;
        }
        std::string text = trim(std::string_view{src.text}.substr(start, i - start));
        if (!done() && cur() == '/') {  // trailing // comment
            line_comment();
        }
        emit(token_kind::pp_directive, text, line);
        return text;
    }

    // After an `#if 0`: skip raw lines, tracking nested conditionals,
    // until the matching #endif / #else / #elif. Everything inside is
    // dead code and must produce no tokens and no annotations.
    void skip_disabled_region() {
        int depth = 0;
        while (!done()) {
            // advance to next line
            while (!done() && cur() != '\n') ++i;
            if (!done()) ++i;
            // inspect the new line's first non-whitespace
            std::size_t j = i;
            while (j < src.text.size() && (src.text[j] == ' ' || src.text[j] == '\t')) ++j;
            if (j >= src.text.size()) {
                i = src.text.size();
                return;
            }
            if (src.text[j] != '#') continue;
            std::size_t eol = src.text.find('\n', j);
            std::string dir = trim(std::string_view{src.text}.substr(
                j, (eol == std::string::npos ? src.text.size() : eol) - j));
            auto starts = [&](std::string_view p) { return dir.rfind(p, 0) == 0; };
            if (starts("#if") || starts("# if")) {
                ++depth;
            } else if (starts("#endif") || starts("# endif")) {
                if (depth == 0) {
                    i = j;
                    pp_line();
                    return;
                }
                --depth;
            } else if ((starts("#else") || starts("#elif") || starts("# else") ||
                        starts("# elif")) &&
                       depth == 0) {
                i = j;
                pp_line();
                return;
            }
        }
    }

    void identifier_or_raw() {
        std::size_t start = i;
        int line = line_here();
        while (!done() && ident_char(cur())) ++i;
        std::string text{std::string_view{src.text}.substr(start, i - start)};
        if (!done() && cur() == '"' &&
            (text == "R" || text == "u8R" || text == "uR" || text == "UR" || text == "LR")) {
            raw_string(line);
            return;
        }
        if (!done() && (cur() == '"' || cur() == '\'') &&
            (text == "u8" || text == "u" || text == "U" || text == "L")) {
            quoted(cur(), cur() == '"' ? token_kind::string_lit : token_kind::char_lit);
            return;
        }
        emit(token_kind::identifier, std::move(text), line);
    }

    void number() {
        std::size_t start = i;
        int line = line_here();
        while (!done()) {
            char c = cur();
            if (ident_char(c) || c == '.' || c == '\'') {
                ++i;
            } else if ((c == '+' || c == '-') && i > start) {
                char prev = src.text[i - 1];
                if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
                    ++i;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        emit(token_kind::number, std::string{std::string_view{src.text}.substr(start, i - start)},
             line);
    }

    void run() {
        while (!done()) {
            char c = cur();
            if (c == '\n') {
                bol = true;
                ++i;
                continue;
            }
            if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
                ++i;
                continue;
            }
            if (c == '/' && peek() == '/') {
                line_comment();
                continue;
            }
            if (c == '/' && peek() == '*') {
                block_comment();
                continue;
            }
            if (c == '#' && bol) {
                std::string dir = pp_line();
                if (dir.rfind("#if", 0) == 0) {
                    std::string cond = trim(std::string_view{dir}.substr(3));
                    if (cond == "0" || cond == "false") skip_disabled_region();
                }
                bol = true;  // pp_line leaves i at the newline
                continue;
            }
            bol = false;
            if (c == '"') {
                quoted('"', token_kind::string_lit);
                continue;
            }
            if (c == '\'') {
                quoted('\'', token_kind::char_lit);
                continue;
            }
            if (ident_start(c)) {
                identifier_or_raw();
                continue;
            }
            if (digit(c) || (c == '.' && digit(peek()))) {
                number();
                continue;
            }
            // punctuator; keep `::` and `->` whole, everything else single
            int line = line_here();
            if (c == ':' && peek() == ':') {
                emit(token_kind::punct, "::", line);
                i += 2;
            } else if (c == '-' && peek() == '>') {
                emit(token_kind::punct, "->", line);
                i += 2;
            } else {
                emit(token_kind::punct, std::string(1, c), line);
                ++i;
            }
        }
    }
};

}  // namespace

lexed_file lex(std::string_view source, std::string path) {
    lexed_file out;
    out.path = std::move(path);
    spliced_source spliced = remove_splices(source);
    scanner s{spliced, out};
    s.run();
    out.line_count = spliced.last_line;
    return out;
}

}  // namespace hawc::analyze
